// GraphRegistry: process-level sharing of mmap-backed graph storage.
//
// Storage sharing in storage.h is per-StorageRef: two `read_pgr` calls on
// the same file each map it and each memoize their own transpose. A
// long-lived serving process that re-opens its graphs (several drivers in
// one binary, bench iterations, request loops) therefore pays the mapping
// and transpose cost once per open instead of once per process. The
// registry closes that gap: a process-wide table keyed by canonical file
// identity hands every opener of the same file the same GraphStorage — one
// `MappedFile`, one memoized transpose.
//
// Keying: files are identified by `st_dev`/`st_ino` from stat(2) — not the
// path string — so symlinks, `./`-prefixed and absolute spellings of one
// file all dedupe to a single entry. The key additionally includes the file
// size and mtime (nanoseconds): rewriting a graph in place produces a new
// key, so a stale mapping of the old content is never handed out (the old
// entry ages out via weak_ptr expiry / evict_expired()).
//
// Ownership: entries hold a `weak_ptr<GraphStorage>`. The registry never
// extends a graph's lifetime by itself — when the last Graph drops, the
// mapping is unmapped as before and the entry is just a tombstone. `pin()`
// upgrades an entry to a strong reference for serving use (the mapping
// survives between requests); `evict()` drops an entry, pinned or not.
//
// Concurrency: a global table mutex guards the key -> entry map, and a
// per-entry mutex is held across the opener callback, so two threads racing
// to open the same file produce exactly one mapping (the loser blocks, then
// hits). Counters (hits / misses / evictions / bytes mapped once per
// distinct mapping) are atomics, surfaced through the drivers' metrics
// documents as `registry_*` params.
//
// Scope: only the `.pgr` mmap open path consults the registry (see
// graph_io.cpp). Heap loads (.adj/.bin, PgrOpen::kCopy) are excluded by
// design — kCopy's documented contract is decoupling from the file.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "graphs/storage.h"

namespace pasgal {

class GraphRegistry {
 public:
  // Counter snapshot plus current table shape. `bytes_mapped` counts each
  // distinct mapping once, at miss time — N opens of one file add its size
  // a single time.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes_mapped = 0;
    std::uint64_t entries = 0;         // live table entries (incl. expired)
    std::uint64_t pinned_entries = 0;  // entries holding a strong reference
  };

  static GraphRegistry& instance();

  // Returns the cached storage for `path` if a previous open of the same
  // file (by identity, see header comment) is still alive; otherwise runs
  // `opener`, caches its result, and returns it. The per-entry lock is held
  // across `opener`, so concurrent opens of one file map it once. If the
  // file cannot be stat'ed the registry steps aside and calls `opener`
  // directly (it raises the typed kIo error the caller expects).
  StorageRef open_shared(const std::string& path,
                         const std::function<StorageRef()>& opener);

  // Upgrades the entry for `path` to a strong reference so the mapping
  // outlives the graphs using it (serving mode). Returns false when there
  // is no live entry to pin (never opened, or already expired).
  bool pin(const std::string& path);

  // Drops the strong reference taken by pin() without evicting the entry;
  // the storage then lives only as long as outstanding graphs. Returns
  // false when the entry does not exist.
  bool unpin(const std::string& path);

  // Removes the entry for `path`, pinned or not, and counts an eviction.
  // Outstanding graphs keep their storage alive (shared_ptr semantics);
  // the next open simply maps afresh. Returns false when there was no
  // entry to remove.
  bool evict(const std::string& path);

  // Sweeps tombstones: removes unpinned entries whose storage has expired.
  // Returns the number removed (not counted as evictions — their mappings
  // were already gone).
  std::size_t evict_expired();

  // Drops every entry and zeroes all counters. Test hook.
  void clear();

  Stats stats() const;

 private:
  // stat(2) identity of an open; see the keying discussion above.
  struct FileKey {
    std::uint64_t dev = 0;
    std::uint64_t ino = 0;
    std::uint64_t size = 0;
    std::uint64_t mtime_ns = 0;
    auto operator<=>(const FileKey&) const = default;
  };

  struct Entry {
    std::mutex mu;  // held across the opener: one mapping per race
    std::weak_ptr<GraphStorage> storage;
    StorageRef pinned;  // non-null after pin(); cleared by unpin()/evict()
  };

  GraphRegistry() = default;

  static bool file_key(const std::string& path, FileKey& out);
  std::shared_ptr<Entry> find_entry(const std::string& path);

  mutable std::mutex mu_;
  std::map<FileKey, std::shared_ptr<Entry>> table_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> bytes_mapped_{0};
};

}  // namespace pasgal
