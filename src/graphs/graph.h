// Compressed-sparse-row graph representation and builders.
//
// Vertex ids are 32-bit, edge ids 64-bit (matching the paper's scale needs;
// Multistep's 32-bit edge limitation is one of its tabled weaknesses).
// A directed graph is a single CSR; algorithms needing reverse edges take an
// explicitly-built transpose. Undirected graphs are stored symmetrized (every
// edge appears in both directions), as in GBBS/PBBS.
//
// Storage model: a Graph is spans over a shared GraphStorage handle
// (graphs/storage.h), which owns the arrays either as heap buffers or as an
// mmap'd read-only `.pgr` segment. Copying a Graph shares the storage;
// `transpose()` is memoized on the handle, so every copy (and every bench
// variant) pays for the reverse CSR at most once.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "graphs/storage.h"
#include "parlay/parallel.h"
#include "parlay/primitives.h"
#include "parlay/sort.h"
#include "pasgal/error.h"

namespace pasgal {

using VertexId = std::uint32_t;
using EdgeId = std::uint64_t;

static_assert(std::is_same_v<VertexId, StorageVertexId>);
static_assert(std::is_same_v<EdgeId, StorageEdgeId>);

inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);
// Edge id handed to edge_map updates for overlay-inserted edges: they have no
// slot in the base targets array (weighted traversals never see one — updates
// on weighted graphs are rejected at apply_updates).
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

class Graph;

// The delta overlay collapsed into a plain heap CSR: (base minus deleted
// edges) plus inserted edges, per-vertex sorted — the same adjacency order a
// from-scratch rebuild produces. Returns the graph unchanged when no overlay
// is attached. Implemented in graphs/delta.cpp.
Graph materialize_effective(const Graph& g);

// Parallel CSR invariant check (implemented in graphs/validate.cpp):
// offsets present and monotone, offsets[0] == 0, offsets[n] == m, every
// target < n, and n within the 32-bit vertex-id space. Returns the first
// violation as a kValidation Status. All read_* paths run this before
// handing a graph to algorithms that do unchecked offsets[]/targets[]
// indexing.
Status validate_csr(std::span<const EdgeId> offsets,
                    std::span<const VertexId> targets);

struct Edge {
  VertexId from = 0;
  VertexId to = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

template <typename W>
struct WeightedEdge {
  VertexId from = 0;
  VertexId to = 0;
  W weight{};
};

// Unweighted CSR graph: span views over a shared storage handle.
class Graph {
 public:
  Graph() = default;
  Graph(std::vector<EdgeId> offsets, std::vector<VertexId> targets)
      : Graph(GraphStorage::owned(std::move(offsets), std::move(targets))) {}
  explicit Graph(StorageRef storage)
      : storage_(std::move(storage)),
        offsets_(storage_ ? storage_->offsets()
                          : std::span<const EdgeId>{}),
        targets_(storage_ ? storage_->targets()
                          : std::span<const VertexId>{}),
        num_edges_(storage_ ? storage_->edge_count() : 0) {}

  std::size_t num_vertices() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  // From the storage handle, not targets_.size(): a window-only (sharded
  // compressed) storage has no whole-graph targets array but still has m.
  std::size_t num_edges() const { return num_edges_; }

  EdgeId out_degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  std::span<const VertexId> neighbors(VertexId v) const {
    return {targets_.data() + offsets_[v],
            static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
  }

  EdgeId edge_begin(VertexId v) const { return offsets_[v]; }
  EdgeId edge_end(VertexId v) const { return offsets_[v + 1]; }
  VertexId edge_target(EdgeId e) const { return targets_[e]; }

  std::span<const EdgeId> offsets() const { return offsets_; }
  std::span<const VertexId> targets() const { return targets_; }

  // The memory behind the spans; shared with copies and cached transposes.
  // Null only for a default-constructed (empty) graph.
  const StorageRef& storage() const { return storage_; }

  // True when targets exist only shard-at-a-time (sharded compressed open):
  // neighbors()/edge_target() are unusable, only window-driven traversal
  // (edge_map) can read edges.
  bool windowed() const { return storage_ != nullptr && storage_->windowed(); }

  // True when a pending update overlay (graphs/delta.h) is attached: the
  // base spans alone no longer describe the graph. edge_map merges the
  // overlay in; direct CSR readers must materialize_effective() or guard
  // with ensure_no_delta().
  bool has_delta() const { return storage_ != nullptr && storage_->has_delta(); }

  // Typed guard for algorithms that random-access offsets()/targets()
  // directly: on an overlaid graph they would silently compute against the
  // stale base adjacency.
  void ensure_no_delta(const char* what) const {
    if (!has_delta()) return;
    throw Error(ErrorCategory::kUsage,
                std::string(what) +
                    " reads the base CSR directly and cannot see this "
                    "graph's pending update overlay; compact the graph "
                    "first or use an edge_map-based variant",
                storage_->source_path());
  }

  // Typed guard for algorithms that random-access the adjacency arrays.
  // Rejects BOTH sharded modes: windowed (compressed) opens have no
  // whole-graph targets at all, and raw sharded opens keep full spans but
  // only the active shard is hinted resident — a kernel walking raw targets
  // would silently fault the whole section past the MappedWindow, defeating
  // check_windowed_footprint's pricing.
  void ensure_in_core(const char* what) const {
    if (storage_ == nullptr ||
        (!storage_->windowed() && storage_->shard_window() == nullptr)) {
      return;
    }
    throw Error(ErrorCategory::kUsage,
                std::string(what) +
                    " needs whole-graph adjacency access, but this graph is "
                    "open in windowed (sharded) mode; reopen without "
                    "--shard-mb or use an edge_map-based variant",
                storage_->source_path());
  }

  // Builds a CSR from an edge list (duplicates preserved unless dedup=true;
  // self-loops preserved unless drop_self_loops=true). Stable counting-sort
  // construction; O(n + m) work.
  static Graph from_edges(std::size_t n, std::span<const Edge> edges,
                          bool dedup = false, bool drop_self_loops = false);

  // Reverse of every edge, with per-vertex sorted adjacency lists. Memoized
  // on the storage handle: repeat calls (from any copy of this graph) return
  // the cached reverse CSR without recomputing.
  Graph transpose() const;

  // Union of each edge with its reverse, deduplicated, self-loops dropped:
  // the symmetrized graph used for BCC / undirected problems.
  Graph symmetrize() const;

  bool is_symmetric() const;

  // CSR invariant check; see validate_csr() above.
  Status validate() const { return validate_csr(offsets_, targets_); }

  // Lazily validates an un-deep-validated storage (the O(1) `.pgr` mmap
  // open skips per-element checks). Algorithm entry points call this before
  // unchecked offsets[]/targets[] indexing, so a well-formed-header file
  // with out-of-range targets fails with a typed kValidation error instead
  // of reading out of bounds. One pass per storage handle: the result is
  // cached on it, so copies and repeat runs pay a single atomic load.
  void ensure_validated() const {
    if (storage_ == nullptr || storage_->validated()) return;
    Status s = validate();
    if (!s.ok()) {
      throw Error(s.category(), s.message(), storage_->source_path());
    }
    storage_->mark_validated();
  }

  std::vector<Edge> to_edges() const {
    ensure_in_core("edge-list export");
    if (has_delta()) return materialize_effective(*this).to_edges();
    std::vector<Edge> edges(num_edges());
    parallel_for(0, num_vertices(), [&](std::size_t v) {
      for (EdgeId e = offsets_[v]; e < offsets_[v + 1]; ++e) {
        edges[e] = Edge{static_cast<VertexId>(v), targets_[e]};
      }
    });
    return edges;
  }

  // Content equality (same CSR arrays), independent of backend: a heap-built
  // graph equals its mmap'd round-trip.
  friend bool operator==(const Graph& a, const Graph& b) {
    return std::equal(a.offsets_.begin(), a.offsets_.end(),
                      b.offsets_.begin(), b.offsets_.end()) &&
           std::equal(a.targets_.begin(), a.targets_.end(),
                      b.targets_.begin(), b.targets_.end());
  }

 private:
  Graph transpose_uncached() const;

  StorageRef storage_;
  std::span<const EdgeId> offsets_;   // size n+1
  std::span<const VertexId> targets_; // size m (empty when windowed)
  std::size_t num_edges_ = 0;
};

// Weighted CSR graph; weight i belongs to targets()[i]. Weights live in the
// same storage handle when W matches the on-disk weight type (so a weighted
// `.pgr` maps zero-copy); otherwise they are an owned array shared between
// copies.
template <typename W>
class WeightedGraph {
 public:
  WeightedGraph() = default;
  WeightedGraph(std::vector<EdgeId> offsets, std::vector<VertexId> targets,
                std::vector<W> weights) {
    if constexpr (std::is_same_v<W, StorageWeight>) {
      graph_ = Graph(GraphStorage::owned(std::move(offsets),
                                         std::move(targets),
                                         std::move(weights)));
      weights_ = graph_.storage()->weights();
    } else {
      graph_ = Graph(std::move(offsets), std::move(targets));
      own_weights_ = std::make_shared<const std::vector<W>>(std::move(weights));
      weights_ = *own_weights_;
    }
  }
  WeightedGraph(Graph g, std::vector<W> weights)
      : graph_(std::move(g)),
        own_weights_(
            std::make_shared<const std::vector<W>>(std::move(weights))) {
    weights_ = *own_weights_;
  }
  // Adopts a storage handle that carries weights (the weighted `.pgr` path).
  explicit WeightedGraph(StorageRef storage) : graph_(std::move(storage)) {
    static_assert(std::is_same_v<W, StorageWeight>,
                  "storage-backed weights are StorageWeight");
    if (graph_.storage() != nullptr) weights_ = graph_.storage()->weights();
  }

  std::size_t num_vertices() const { return graph_.num_vertices(); }
  std::size_t num_edges() const { return graph_.num_edges(); }
  EdgeId out_degree(VertexId v) const { return graph_.out_degree(v); }
  std::span<const VertexId> neighbors(VertexId v) const {
    return graph_.neighbors(v);
  }
  std::span<const W> neighbor_weights(VertexId v) const {
    return {weights_.data() + graph_.edge_begin(v),
            static_cast<std::size_t>(graph_.out_degree(v))};
  }
  EdgeId edge_begin(VertexId v) const { return graph_.edge_begin(v); }
  EdgeId edge_end(VertexId v) const { return graph_.edge_end(v); }
  VertexId edge_target(EdgeId e) const { return graph_.edge_target(e); }
  W edge_weight(EdgeId e) const { return weights_[e]; }

  std::span<const W> weights() const { return weights_; }

  const Graph& unweighted() const { return graph_; }

  // Structural check plus weight sanity: the weight array must cover every
  // edge (one weight per target). Algorithms index weights_[e] unchecked.
  Status validate() const {
    Status s = graph_.validate();
    if (!s.ok()) return s;
    if (weights_.size() != graph_.num_edges()) {
      return Status::Failure(
          ErrorCategory::kValidation,
          "weight array has " + std::to_string(weights_.size()) +
              " entries but the graph has " +
              std::to_string(graph_.num_edges()) + " edges");
    }
    return Status::Ok();
  }

  // See Graph::ensure_validated(): weights are storage-sized by the read
  // paths, so the structural CSR check is the part that can be deferred.
  void ensure_validated() const { graph_.ensure_validated(); }

  static WeightedGraph from_edges(std::size_t n,
                                  std::span<const WeightedEdge<W>> edges);

  WeightedGraph transpose() const;

 private:
  Graph graph_;
  // Set when weights are not storage-backed; shared so copies never repoint
  // the span at a reallocated buffer.
  std::shared_ptr<const std::vector<W>> own_weights_;
  std::span<const W> weights_;
};

// ---------------------------------------------------------------------------
// Implementation
// ---------------------------------------------------------------------------

namespace internal {

// Stable bucket placement of items keyed by vertex: returns (offsets, perm)
// where perm is the index permutation grouping items by key.
inline std::pair<std::vector<EdgeId>, std::vector<EdgeId>> bucket_by_source(
    std::size_t n, std::size_t m, const auto& key_of) {
  std::vector<std::atomic<EdgeId>> counts(n + 1);
  parallel_for(0, n + 1,
               [&](std::size_t i) { counts[i].store(0, std::memory_order_relaxed); });
  parallel_for(0, m, [&](std::size_t i) {
    counts[key_of(i)].fetch_add(1, std::memory_order_relaxed);
  });
  std::vector<EdgeId> offsets(n + 1);
  scan_indexed<EdgeId>(
      n + 1, [&](std::size_t i) { return counts[i].load(std::memory_order_relaxed); },
      [&](std::size_t i, EdgeId v) { offsets[i] = v; });
  std::vector<std::atomic<EdgeId>> cursor(n);
  parallel_for(0, n, [&](std::size_t v) {
    cursor[v].store(offsets[v], std::memory_order_relaxed);
  });
  std::vector<EdgeId> perm(m);
  parallel_for(0, m, [&](std::size_t i) {
    EdgeId pos = cursor[key_of(i)].fetch_add(1, std::memory_order_relaxed);
    perm[pos] = i;
  });
  return {std::move(offsets), std::move(perm)};
}

}  // namespace internal

inline Graph Graph::from_edges(std::size_t n, std::span<const Edge> edges,
                               bool dedup, bool drop_self_loops) {
  std::span<const Edge> input = edges;
  std::vector<Edge> cleaned;
  if (drop_self_loops) {
    cleaned = filter(edges, [](const Edge& e) { return e.from != e.to; });
    input = cleaned;
  }
  auto [offsets, perm] = internal::bucket_by_source(
      n, input.size(), [&](std::size_t i) { return input[i].from; });
  std::vector<VertexId> targets(input.size());
  parallel_for(0, input.size(),
               [&](std::size_t i) { targets[i] = input[perm[i]].to; });
  // Sort each adjacency list for deterministic layout & fast dedup.
  parallel_for(
      0, n,
      [&](std::size_t v) {
        std::sort(targets.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
                  targets.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
      },
      64);
  if (!dedup) return Graph(std::move(offsets), std::move(targets));

  // Remove duplicate targets per vertex.
  std::vector<EdgeId> new_deg(n);
  parallel_for(0, n, [&](std::size_t v) {
    EdgeId lo = offsets[v], hi = offsets[v + 1];
    EdgeId count = 0;
    for (EdgeId e = lo; e < hi; ++e) {
      if (e == lo || targets[e] != targets[e - 1]) ++count;
    }
    new_deg[v] = count;
  });
  std::vector<EdgeId> new_offsets(n + 1);
  new_offsets[n] = scan_indexed<EdgeId>(
      n, [&](std::size_t v) { return new_deg[v]; },
      [&](std::size_t v, EdgeId x) { new_offsets[v] = x; });
  std::vector<VertexId> new_targets(new_offsets[n]);
  parallel_for(0, n, [&](std::size_t v) {
    EdgeId out = new_offsets[v];
    EdgeId lo = offsets[v], hi = offsets[v + 1];
    for (EdgeId e = lo; e < hi; ++e) {
      if (e == lo || targets[e] != targets[e - 1]) new_targets[out++] = targets[e];
    }
  });
  return Graph(std::move(new_offsets), std::move(new_targets));
}

inline Graph Graph::transpose_uncached() const {
  std::size_t n = num_vertices();
  std::size_t m = num_edges();
  // Source of edge e: invert via offsets. Precompute per-edge source.
  std::vector<VertexId> source(m);
  parallel_for(0, n, [&](std::size_t v) {
    for (EdgeId e = offsets_[v]; e < offsets_[v + 1]; ++e) {
      source[e] = static_cast<VertexId>(v);
    }
  });
  auto [offsets, perm] = internal::bucket_by_source(
      n, m, [&](std::size_t e) { return targets_[e]; });
  std::vector<VertexId> targets(m);
  parallel_for(0, m, [&](std::size_t i) { targets[i] = source[perm[i]]; });
  parallel_for(
      0, n,
      [&](std::size_t v) {
        std::sort(targets.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
                  targets.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
      },
      64);
  return Graph(std::move(offsets), std::move(targets));
}

inline Graph Graph::transpose() const {
  if (storage_ == nullptr) return transpose_uncached();
  if (StorageRef cached = storage_->transpose_cache()) {
    return Graph(std::move(cached));
  }
  // A windowed open pre-populates the cache from the file's transpose
  // sections; without them the reverse CSR cannot be built shard-at-a-time.
  ensure_in_core("transpose construction");
  Graph t = transpose_uncached();
  return Graph(storage_->set_transpose_cache(t.storage_));
}

inline Graph Graph::symmetrize() const {
  ensure_in_core("symmetrization");
  if (has_delta()) return materialize_effective(*this).symmetrize();
  std::size_t n = num_vertices();
  std::size_t m = num_edges();
  std::vector<Edge> both(2 * m);
  parallel_for(0, n, [&](std::size_t v) {
    for (EdgeId e = offsets_[v]; e < offsets_[v + 1]; ++e) {
      both[2 * e] = Edge{static_cast<VertexId>(v), targets_[e]};
      both[2 * e + 1] = Edge{targets_[e], static_cast<VertexId>(v)};
    }
  });
  return from_edges(n, both, /*dedup=*/true, /*drop_self_loops=*/true);
}

inline bool Graph::is_symmetric() const {
  // operator== compares base spans; collapse the overlay first so the
  // transpose and the forward graph are compared at the same version.
  if (has_delta()) return materialize_effective(*this).is_symmetric();
  Graph t = transpose();
  Graph self = from_edges(num_vertices(), to_edges());  // sorted lists
  return self == t;
}

template <typename W>
WeightedGraph<W> WeightedGraph<W>::from_edges(
    std::size_t n, std::span<const WeightedEdge<W>> edges) {
  std::size_t m = edges.size();
  auto [offsets, perm] = internal::bucket_by_source(
      n, m, [&](std::size_t i) { return edges[i].from; });
  std::vector<VertexId> targets(m);
  std::vector<W> weights(m);
  parallel_for(0, m, [&](std::size_t i) {
    targets[i] = edges[perm[i]].to;
    weights[i] = edges[perm[i]].weight;
  });
  return WeightedGraph<W>(std::move(offsets), std::move(targets),
                          std::move(weights));
}

template <typename W>
WeightedGraph<W> WeightedGraph<W>::transpose() const {
  std::size_t n = num_vertices();
  std::size_t m = num_edges();
  std::vector<WeightedEdge<W>> reversed(m);
  parallel_for(0, n, [&](std::size_t v) {
    for (EdgeId e = edge_begin(v); e < edge_end(v); ++e) {
      reversed[e] =
          WeightedEdge<W>{edge_target(e), static_cast<VertexId>(v), weights_[e]};
    }
  });
  return from_edges(n, reversed);
}

}  // namespace pasgal
