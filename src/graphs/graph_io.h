// Graph serialization in the two formats PASGAL supports:
//  * `.adj`  — PBBS text AdjacencyGraph format:
//              "AdjacencyGraph\n<n>\n<m>\n" then n offsets, then m targets,
//              one integer per line. Weighted variant uses
//              "WeightedAdjacencyGraph" and appends m weights.
//  * `.bin`  — GBBS binary CSR format: three u64 header words
//              (n, m, total size in bytes) followed by (n+1) u64 offsets and
//              m u32 targets.
//
// Readers treat every byte as untrusted (see DESIGN.md "Error handling"):
//  * header-claimed sizes are cross-checked against the actual file size and
//    the process memory ceiling (pasgal/resource.h) before any allocation;
//  * truncation and trailing garbage are rejected as kFormat errors;
//  * the resulting CSR is run through validate_csr() (monotone offsets,
//    offsets[n] == m, targets in bounds) before being returned.
// All failures throw a typed pasgal::Error carrying the path and, where
// meaningful, the byte offset of the violation.
#pragma once

#include <cstdint>
#include <string>

#include "graphs/graph.h"

namespace pasgal {

void write_adj(const Graph& g, const std::string& path);
Graph read_adj(const std::string& path);

void write_adj(const WeightedGraph<std::uint32_t>& g, const std::string& path);
WeightedGraph<std::uint32_t> read_weighted_adj(const std::string& path);

void write_bin(const Graph& g, const std::string& path);
Graph read_bin(const std::string& path);

// Weighted binary format: the unweighted header/body followed by m u32
// weights (the layout GBBS uses for its weighted .bin graphs).
void write_bin(const WeightedGraph<std::uint32_t>& g, const std::string& path);
WeightedGraph<std::uint32_t> read_weighted_bin(const std::string& path);

}  // namespace pasgal
