// Graph serialization in the three formats PASGAL supports:
//  * `.adj`  — PBBS text AdjacencyGraph format:
//              "AdjacencyGraph\n<n>\n<m>\n" then n offsets, then m targets,
//              one integer per line. Weighted variant uses
//              "WeightedAdjacencyGraph" and appends m weights.
//  * `.bin`  — GBBS binary CSR format: three u64 header words
//              (n, m, total size in bytes) followed by (n+1) u64 offsets and
//              m u32 targets.
//  * `.pgr`  — PASGAL's versioned binary CSR, designed for zero-copy mmap
//              loading. See DESIGN.md "Graph storage & on-disk format" for
//              the byte-level layout; in brief: a 192-byte header (magic
//              "PGRGRAPH", u32 version, u32 flags for weighted / symmetric /
//              embedded transpose, u64 n / m / section count, and a fixed
//              5-slot section table of {file offset, bytes, checksum}),
//              followed by 64-byte-aligned sections in canonical order:
//              offsets, targets, weights, transpose offsets, transpose
//              targets. Checksums are xxhash-style 64-bit digests
//              (graphs/storage.h hash_bytes).
//
// Readers treat every byte as untrusted (see DESIGN.md "Error handling"):
//  * header-claimed sizes are cross-checked against the actual file size and
//    the process memory ceiling (via GraphStorage::check_footprint) before
//    any allocation or span construction;
//  * truncation and trailing garbage are rejected as kFormat errors;
//  * the resulting CSR is run through validate_csr() (monotone offsets,
//    offsets[n] == m, targets in bounds) before being returned — except on
//    the `.pgr` mmap fast path, which by design is O(1): it verifies the
//    header/layout structurally and defers per-element checks and section
//    checksums to the opt-in `validate` flag (`.pgr` files are a cache
//    format produced by our own writers; `--validate` restores the full
//    untrusted-input treatment).
// All failures throw a typed pasgal::Error carrying the path and, where
// meaningful, the byte offset of the violation.
#pragma once

#include <cstdint>
#include <string>

#include "graphs/graph.h"

namespace pasgal {

void write_adj(const Graph& g, const std::string& path);
Graph read_adj(const std::string& path);

void write_adj(const WeightedGraph<std::uint32_t>& g, const std::string& path);
WeightedGraph<std::uint32_t> read_weighted_adj(const std::string& path);

void write_bin(const Graph& g, const std::string& path);
Graph read_bin(const std::string& path);

// Weighted binary format: the unweighted header/body followed by m u32
// weights (the layout GBBS uses for its weighted .bin graphs).
void write_bin(const WeightedGraph<std::uint32_t>& g, const std::string& path);
WeightedGraph<std::uint32_t> read_weighted_bin(const std::string& path);

// --- .pgr: versioned mmap-able CSR ------------------------------------------

// Version 1: every section is the raw CSR array (zero-copy mmap).
// Version 2: identical except the targets section may be delta-varint
// compressed (GBBS-style byte codes; see DESIGN.md §5f). The writer emits
// version 1 whenever compression is off, so uncompressed outputs stay
// byte-identical across versions; the reader accepts both.
inline constexpr std::uint32_t kPgrVersion = 1;
inline constexpr std::uint32_t kPgrVersionCompressed = 2;

// How read_pgr materializes the CSR arrays.
//  * kMmap — map the file read-only and hand out spans into it: O(1) open,
//    no full-file copy, RSS bounded by pages actually touched, page cache
//    shared across concurrent runs. The Graph keeps the mapping alive.
//  * kCopy — copy the sections into heap-backed storage (through the same
//    resource-ceiling guard as read_bin) and drop the mapping: use when the
//    file may be replaced underneath a long-lived process.
enum class PgrOpen { kMmap, kCopy };

struct PgrWriteOptions {
  // Persist the reverse CSR as extra sections so the mmap open path can
  // pre-populate the transpose cache (SCC/BCC drivers skip rebuilding gt).
  bool include_transpose = false;
  // Caller-asserted symmetry (recorded in the header flags; not verified —
  // is_symmetric() is a full transpose + compare).
  bool symmetric = false;
  // Delta-varint compress the targets section (bumps the file to version 2).
  // Offsets, weights, and any embedded transpose sections stay raw so they
  // remain zero-copy on open; reading a compressed file decodes targets in
  // parallel into heap storage.
  bool compress_targets = false;
};

// Canonical section order of the on-disk format (indices into
// PgrInfo::section_bytes); pgr_section_name() names each slot.
inline constexpr int kPgrSectionCount = 5;
const char* pgr_section_name(int i);

// Header summary of a .pgr file without loading its sections.
struct PgrInfo {
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::uint32_t version = 0;
  bool weighted = false;
  bool symmetric = false;
  bool has_transpose = false;
  bool compressed = false;
  std::uint64_t file_bytes = 0;
  // On-disk bytes of the targets section: m * sizeof(VertexId) when raw,
  // the encoded stream size when compressed.
  std::uint64_t encoded_target_bytes = 0;
  // Per-section on-disk byte sizes in canonical order (offsets, targets,
  // weights, transpose offsets, transpose targets); 0 marks an absent
  // section.
  std::uint64_t section_bytes[kPgrSectionCount] = {};
  // Number of varint chunks in a compressed (v2) targets section, read from
  // its 16-byte chunk header; 0 for raw files and empty edge sets.
  std::uint64_t chunk_count = 0;
};

/// Sharded (beyond-RAM) open: instead of keeping the whole adjacency
// resident, partition it into contiguous vertex-range shards whose edge
// payload fits `window_bytes` and let the traversal layer sweep them through
// one bounded residency window (see DESIGN.md §5i). With `auto_shard` the
// open stays in-core (plain shared mmap) whenever the full CSR footprint
// fits the memory ceiling and falls back to a ceiling/4 window only when it
// does not. A zero-initialized spec means no sharding. Only meaningful for
// mmap opens of .pgr files; combining a spec with kCopy or `validate` is a
// kUsage error (both would touch every byte, defeating the window).
struct PgrShardSpec {
  std::uint64_t window_bytes = 0;
  bool auto_shard = false;
  bool enabled() const { return window_bytes != 0 || auto_shard; }
};

// Per-open cost accounting, filled by read_pgr / read_weighted_pgr when the
// caller passes a non-null pointer. `decode_wall_ns` is 0 for uncompressed
// files and for registry warm opens of a compressed file (the decoded
// buffer is memoized on the shared storage handle).
struct PgrOpenStats {
  bool compressed = false;
  std::uint64_t encoded_target_bytes = 0;
  std::uint64_t decode_wall_ns = 0;
};

void write_pgr(const Graph& g, const std::string& path,
               const PgrWriteOptions& opts = {});
void write_pgr(const WeightedGraph<std::uint32_t>& g, const std::string& path,
               const PgrWriteOptions& opts = {});

// Opens a .pgr file. `validate` additionally verifies every section checksum
// and runs the full validate_csr pass (always on for kCopy, opt-in for
// kMmap — the O(1) promise). A file with embedded transpose sections comes
// back with the transpose cache pre-populated, sharing the same mapping.
// An enabled `shard` spec opens the graph windowed: the storage carries a
// ShardPlan + MappedWindow the traversal layer sweeps, the resident
// footprint is priced as offsets + window (+ decode buffer / transpose
// window) instead of the whole file, and the open bypasses the registry
// (each sharded consumer owns its window).
Graph read_pgr(const std::string& path, PgrOpen mode = PgrOpen::kMmap,
               bool validate = false, PgrOpenStats* stats = nullptr,
               const PgrShardSpec& shard = {});
// Requires the weighted flag; weights map zero-copy alongside the topology.
WeightedGraph<std::uint32_t> read_weighted_pgr(
    const std::string& path, PgrOpen mode = PgrOpen::kMmap,
    bool validate = false, PgrOpenStats* stats = nullptr,
    const PgrShardSpec& shard = {});

// Header-only peek: parses and structurally checks the header (magic,
// version, flags, layout vs file size) without touching section payloads
// (for a compressed file it additionally reads the targets section's
// 16-byte chunk header to report the chunk count).
PgrInfo probe_pgr(const std::string& path);

}  // namespace pasgal
