// Deterministic graph generators standing in for the paper's datasets
// (DESIGN.md §2). One generator per graph class:
//   social/web -> rmat            (power law, low diameter)
//   road       -> road_grid      (sparse, avg degree ~2.6, D ~ sqrt(n))
//   k-NN       -> knn_graph      (geometric, large diameter)
//   synthetic  -> rectangle_grid (REC), sampled_edges (SREC), chain, bubbles
// All generators are pure functions of their arguments (hash-based RNG), so
// every test/bench run sees identical graphs.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "graphs/graph.h"
#include "parlay/hash_rng.h"
#include "parlay/parallel.h"
#include "parlay/primitives.h"

namespace pasgal::gen {

// --- RMAT (Chakrabarti et al.) --------------------------------------------
// Directed power-law graph on n = 2^log2_n vertices with ~m edges.
// Defaults follow Graph500 (a=.57,b=.19,c=.19,d=.05).
inline Graph rmat(int log2_n, std::size_t m, std::uint64_t seed = 1,
                  double a = 0.57, double b = 0.19, double c = 0.19) {
  std::size_t n = std::size_t{1} << log2_n;
  Random rng(seed);
  std::vector<Edge> edges(m);
  parallel_for(0, m, [&](std::size_t i) {
    Random er = rng.fork(i);
    VertexId u = 0, v = 0;
    for (int bit = 0; bit < log2_n; ++bit) {
      double p = static_cast<double>(er.ith_rand(bit)) / 18446744073709551616.0;
      if (p < a) {
        // upper-left: no bits set
      } else if (p < a + b) {
        v |= VertexId{1} << bit;
      } else if (p < a + b + c) {
        u |= VertexId{1} << bit;
      } else {
        u |= VertexId{1} << bit;
        v |= VertexId{1} << bit;
      }
    }
    edges[i] = Edge{u, v};
  });
  return Graph::from_edges(n, edges, /*dedup=*/true, /*drop_self_loops=*/true);
}

// --- uniformly random directed graph ---------------------------------------
inline Graph random_graph(std::size_t n, std::size_t m, std::uint64_t seed = 1) {
  Random rng(seed);
  std::vector<Edge> edges(m);
  parallel_for(0, m, [&](std::size_t i) {
    edges[i] = Edge{static_cast<VertexId>(rng.ith_rand(2 * i) % n),
                    static_cast<VertexId>(rng.ith_rand(2 * i + 1) % n)};
  });
  return Graph::from_edges(n, edges, /*dedup=*/true, /*drop_self_loops=*/true);
}

// --- rectangle grid (paper's REC) -------------------------------------------
// rows x cols lattice, 4-neighbour, undirected (symmetric CSR). The paper's
// REC is 10^3 x 10^5; diameter = rows + cols - 2.
inline Graph rectangle_grid(std::size_t rows, std::size_t cols) {
  std::size_t n = rows * cols;
  std::vector<Edge> edges;
  edges.reserve(4 * n);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      VertexId v = static_cast<VertexId>(r * cols + c);
      if (c + 1 < cols) {
        edges.push_back({v, v + 1});
        edges.push_back({v + 1, v});
      }
      if (r + 1 < rows) {
        VertexId below = static_cast<VertexId>((r + 1) * cols + c);
        edges.push_back({v, below});
        edges.push_back({below, v});
      }
    }
  }
  return Graph::from_edges(n, edges);
}

// --- directed road-like grid -------------------------------------------------
// Like rectangle_grid but each lattice edge keeps both directions with
// probability `two_way`, else a hash-chosen single direction. Models road
// networks with one-way streets: sparse, huge diameter, rich SCC structure.
inline Graph road_grid(std::size_t rows, std::size_t cols, double two_way = 0.8,
                       std::uint64_t seed = 7) {
  std::size_t n = rows * cols;
  Random rng(seed);
  std::vector<Edge> edges;
  edges.reserve(4 * n);
  std::uint64_t counter = 0;
  auto add = [&](VertexId u, VertexId v) {
    std::uint64_t r = rng.ith_rand(counter++);
    double p = static_cast<double>(r >> 11) / 9007199254740992.0;
    if (p < two_way) {
      edges.push_back({u, v});
      edges.push_back({v, u});
    } else if (r & 1) {
      edges.push_back({u, v});
    } else {
      edges.push_back({v, u});
    }
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      VertexId v = static_cast<VertexId>(r * cols + c);
      if (c + 1 < cols) add(v, v + 1);
      if (r + 1 < rows) add(v, static_cast<VertexId>((r + 1) * cols + c));
    }
  }
  return Graph::from_edges(n, edges);
}

// --- edge sampling (paper's SREC = sampled REC) ------------------------------
inline Graph sampled_edges(const Graph& g, double keep_prob, std::uint64_t seed = 9) {
  auto edges = g.to_edges();
  Random rng(seed);
  auto kept = pack_indexed<Edge>(
      edges.size(),
      [&](std::size_t i) {
        return static_cast<double>(rng.ith_rand(i) >> 11) / 9007199254740992.0 <
               keep_prob;
      },
      [&](std::size_t i) { return edges[i]; });
  return Graph::from_edges(g.num_vertices(), kept);
}

// --- k-nearest-neighbour graph ----------------------------------------------
// Points in [0,1)^2 (uniform, or `clusters` Gaussian-ish clusters); each
// point gets directed edges to its k nearest neighbours, found via a uniform
// cell grid. Symmetrized version models the paper's k-NN class.
Graph knn_graph(std::size_t n, int k, std::uint64_t seed = 11, int clusters = 0);

// --- elementary shapes --------------------------------------------------------
inline Graph chain(std::size_t n, bool directed = false) {
  std::vector<Edge> edges;
  edges.reserve(2 * n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    edges.push_back({static_cast<VertexId>(i), static_cast<VertexId>(i + 1)});
    if (!directed) {
      edges.push_back({static_cast<VertexId>(i + 1), static_cast<VertexId>(i)});
    }
  }
  return Graph::from_edges(n, edges);
}

inline Graph cycle(std::size_t n) {
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < n; ++i) {
    edges.push_back(
        {static_cast<VertexId>(i), static_cast<VertexId>((i + 1) % n)});
  }
  return Graph::from_edges(n, edges);
}

inline Graph star(std::size_t n) {  // undirected star, center 0
  std::vector<Edge> edges;
  for (std::size_t i = 1; i < n; ++i) {
    edges.push_back({0, static_cast<VertexId>(i)});
    edges.push_back({static_cast<VertexId>(i), 0});
  }
  return Graph::from_edges(n, edges);
}

inline Graph complete(std::size_t n) {  // directed complete graph (no loops)
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        edges.push_back({static_cast<VertexId>(i), static_cast<VertexId>(j)});
      }
    }
  }
  return Graph::from_edges(n, edges);
}

inline Graph binary_tree(std::size_t n) {  // undirected complete binary tree
  std::vector<Edge> edges;
  for (std::size_t i = 1; i < n; ++i) {
    VertexId parent = static_cast<VertexId>((i - 1) / 2);
    edges.push_back({parent, static_cast<VertexId>(i)});
    edges.push_back({static_cast<VertexId>(i), parent});
  }
  return Graph::from_edges(n, edges);
}

// --- bubble strip (paper's BBL/TRCE mesh class) ------------------------------
// `count` rings ("bubbles") of `size` vertices each; consecutive rings share
// a junction edge. Undirected, diameter ~ count * size / 2: a large-diameter
// mesh with local width, like the nr-collection huge-bubbles graphs.
inline Graph bubbles(std::size_t count, std::size_t size) {
  std::vector<Edge> edges;
  std::size_t n = count * size;
  auto id = [&](std::size_t ring, std::size_t i) {
    return static_cast<VertexId>(ring * size + i);
  };
  for (std::size_t ring = 0; ring < count; ++ring) {
    for (std::size_t i = 0; i < size; ++i) {
      VertexId u = id(ring, i);
      VertexId v = id(ring, (i + 1) % size);
      edges.push_back({u, v});
      edges.push_back({v, u});
    }
    if (ring + 1 < count) {
      VertexId u = id(ring, size / 2);
      VertexId v = id(ring + 1, 0);
      edges.push_back({u, v});
      edges.push_back({v, u});
    }
  }
  return Graph::from_edges(n, edges);
}

// --- weights ------------------------------------------------------------------
// Attach deterministic integer weights in [1, max_weight] to a graph.
// A symmetric graph gets symmetric weights (weight depends on the unordered
// endpoint pair), so undirected SSSP is well-defined.
inline WeightedGraph<std::uint32_t> add_weights(const Graph& g,
                                                std::uint32_t max_weight = 100,
                                                std::uint64_t seed = 13) {
  Random rng(seed);
  std::size_t n = g.num_vertices();
  std::vector<std::uint32_t> weights(g.num_edges());
  parallel_for(0, n, [&](std::size_t u) {
    for (EdgeId e = g.edge_begin(static_cast<VertexId>(u)); e < g.edge_end(static_cast<VertexId>(u)); ++e) {
      VertexId v = g.edge_target(e);
      std::uint64_t lo = std::min<std::uint64_t>(u, v);
      std::uint64_t hi = std::max<std::uint64_t>(u, v);
      weights[e] =
          static_cast<std::uint32_t>(rng.ith_rand(lo * 0x1000003ULL + hi) % max_weight) + 1;
    }
  });
  return WeightedGraph<std::uint32_t>(g, std::move(weights));
}

}  // namespace pasgal::gen
