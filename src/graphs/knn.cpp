// k-nearest-neighbour graph generator using a uniform cell grid.
#include <algorithm>
#include <cmath>
#include <queue>

#include "graphs/generators.h"

namespace pasgal::gen {

namespace {

struct Point {
  double x, y;
};

double sq_dist(Point a, Point b) {
  double dx = a.x - b.x, dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace

Graph knn_graph(std::size_t n, int k, std::uint64_t seed, int clusters) {
  Random rng(seed);
  std::vector<Point> pts(n);
  if (clusters <= 0) {
    parallel_for(0, n, [&](std::size_t i) {
      pts[i] = {static_cast<double>(rng.ith_rand(2 * i) >> 11) / 9007199254740992.0,
                static_cast<double>(rng.ith_rand(2 * i + 1) >> 11) / 9007199254740992.0};
    });
  } else {
    // Cluster centres on a coarse ring; points offset from their centre.
    parallel_for(0, n, [&](std::size_t i) {
      int c = static_cast<int>(rng.ith_rand(3 * i) % static_cast<std::uint64_t>(clusters));
      double angle = 2.0 * 3.141592653589793 * c / clusters;
      double cx = 0.5 + 0.35 * std::cos(angle);
      double cy = 0.5 + 0.35 * std::sin(angle);
      double ox = (static_cast<double>(rng.ith_rand(3 * i + 1) >> 11) / 9007199254740992.0 - 0.5) * 0.2;
      double oy = (static_cast<double>(rng.ith_rand(3 * i + 2) >> 11) / 9007199254740992.0 - 0.5) * 0.2;
      pts[i] = {cx + ox, cy + oy};
    });
  }

  // Cell grid: ~2 points per cell on average.
  std::size_t grid = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::sqrt(static_cast<double>(n) / 2.0)));
  auto cell_of = [&](Point p) {
    std::size_t cx = std::min<std::size_t>(
        grid - 1, static_cast<std::size_t>(std::clamp(p.x, 0.0, 0.999999) * grid));
    std::size_t cy = std::min<std::size_t>(
        grid - 1, static_cast<std::size_t>(std::clamp(p.y, 0.0, 0.999999) * grid));
    return cy * grid + cx;
  };

  // Bucket points by cell (counting sort).
  std::size_t num_cells = grid * grid;
  std::vector<std::atomic<std::uint32_t>> counts(num_cells);
  parallel_for(0, num_cells,
               [&](std::size_t i) { counts[i].store(0, std::memory_order_relaxed); });
  parallel_for(0, n, [&](std::size_t i) {
    counts[cell_of(pts[i])].fetch_add(1, std::memory_order_relaxed);
  });
  std::vector<std::size_t> cell_offsets(num_cells + 1);
  cell_offsets[num_cells] = scan_indexed<std::size_t>(
      num_cells, [&](std::size_t i) { return counts[i].load(std::memory_order_relaxed); },
      [&](std::size_t i, std::size_t v) { cell_offsets[i] = v; });
  std::vector<std::atomic<std::size_t>> cursor(num_cells);
  parallel_for(0, num_cells, [&](std::size_t i) {
    cursor[i].store(cell_offsets[i], std::memory_order_relaxed);
  });
  std::vector<std::uint32_t> cell_points(n);
  parallel_for(0, n, [&](std::size_t i) {
    std::size_t pos = cursor[cell_of(pts[i])].fetch_add(1, std::memory_order_relaxed);
    cell_points[pos] = static_cast<std::uint32_t>(i);
  });

  // For each point, expand rings of cells until k neighbours are certain.
  std::vector<Edge> edges(n * static_cast<std::size_t>(k));
  parallel_for(0, n, [&](std::size_t i) {
    Point p = pts[i];
    std::size_t ccx = std::min<std::size_t>(
        grid - 1, static_cast<std::size_t>(std::clamp(p.x, 0.0, 0.999999) * grid));
    std::size_t ccy = std::min<std::size_t>(
        grid - 1, static_cast<std::size_t>(std::clamp(p.y, 0.0, 0.999999) * grid));
    // Max-heap of (distance, id), keeping the k closest.
    std::priority_queue<std::pair<double, std::uint32_t>> best;
    double cell_w = 1.0 / static_cast<double>(grid);
    for (std::size_t ring = 0; ring < grid; ++ring) {
      // If we already have k and the closest possible point in this ring is
      // farther than our worst, stop.
      if (best.size() == static_cast<std::size_t>(k) && ring > 0) {
        double min_ring_dist = (static_cast<double>(ring) - 1.0) * cell_w;
        if (min_ring_dist > 0 && min_ring_dist * min_ring_dist > best.top().first) break;
      }
      std::ptrdiff_t lo_x = static_cast<std::ptrdiff_t>(ccx) - static_cast<std::ptrdiff_t>(ring);
      std::ptrdiff_t hi_x = static_cast<std::ptrdiff_t>(ccx) + static_cast<std::ptrdiff_t>(ring);
      std::ptrdiff_t lo_y = static_cast<std::ptrdiff_t>(ccy) - static_cast<std::ptrdiff_t>(ring);
      std::ptrdiff_t hi_y = static_cast<std::ptrdiff_t>(ccy) + static_cast<std::ptrdiff_t>(ring);
      auto scan_cell = [&](std::ptrdiff_t cx, std::ptrdiff_t cy) {
        if (cx < 0 || cy < 0 || cx >= static_cast<std::ptrdiff_t>(grid) ||
            cy >= static_cast<std::ptrdiff_t>(grid)) {
          return;
        }
        std::size_t cell = static_cast<std::size_t>(cy) * grid + static_cast<std::size_t>(cx);
        for (std::size_t s = cell_offsets[cell]; s < cell_offsets[cell + 1]; ++s) {
          std::uint32_t j = cell_points[s];
          if (j == i) continue;
          double d = sq_dist(p, pts[j]);
          if (best.size() < static_cast<std::size_t>(k)) {
            best.emplace(d, j);
          } else if (d < best.top().first) {
            best.pop();
            best.emplace(d, j);
          }
        }
      };
      if (ring == 0) {
        scan_cell(static_cast<std::ptrdiff_t>(ccx), static_cast<std::ptrdiff_t>(ccy));
      } else {
        for (std::ptrdiff_t cx = lo_x; cx <= hi_x; ++cx) {
          scan_cell(cx, lo_y);
          scan_cell(cx, hi_y);
        }
        for (std::ptrdiff_t cy = lo_y + 1; cy < hi_y; ++cy) {
          scan_cell(lo_x, cy);
          scan_cell(hi_x, cy);
        }
      }
    }
    std::size_t base = i * static_cast<std::size_t>(k);
    std::size_t got = best.size();
    // Fewer than k neighbours only if n <= k; pad with self-loop-free repeats.
    std::size_t e = 0;
    while (!best.empty()) {
      edges[base + e++] = Edge{static_cast<VertexId>(i), best.top().second};
      best.pop();
    }
    for (; e < static_cast<std::size_t>(k); ++e) {
      edges[base + e] = edges[base + (got ? e % got : 0)];
    }
  });
  return Graph::from_edges(n, edges, /*dedup=*/true, /*drop_self_loops=*/true);
}

}  // namespace pasgal::gen
