#include "graphs/registry.h"

#include <sys/stat.h>

namespace pasgal {

GraphRegistry& GraphRegistry::instance() {
  static GraphRegistry registry;
  return registry;
}

bool GraphRegistry::file_key(const std::string& path, FileKey& out) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return false;
  out.dev = static_cast<std::uint64_t>(st.st_dev);
  out.ino = static_cast<std::uint64_t>(st.st_ino);
  out.size = static_cast<std::uint64_t>(st.st_size);
  out.mtime_ns =
      static_cast<std::uint64_t>(st.st_mtim.tv_sec) * 1000000000ull +
      static_cast<std::uint64_t>(st.st_mtim.tv_nsec);
  return true;
}

std::shared_ptr<GraphRegistry::Entry> GraphRegistry::find_entry(
    const std::string& path) {
  FileKey key;
  if (!file_key(path, key)) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(key);
  return it == table_.end() ? nullptr : it->second;
}

StorageRef GraphRegistry::open_shared(
    const std::string& path, const std::function<StorageRef()>& opener) {
  FileKey key;
  if (!file_key(path, key)) return opener();

  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<Entry>& slot = table_[key];
    if (slot == nullptr) slot = std::make_shared<Entry>();
    entry = slot;
  }

  std::lock_guard<std::mutex> open_lock(entry->mu);
  if (StorageRef live = entry->storage.lock()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return live;
  }
  StorageRef fresh = opener();  // throws propagate; nothing is cached
  misses_.fetch_add(1, std::memory_order_relaxed);
  bytes_mapped_.fetch_add(fresh->bytes_mapped(), std::memory_order_relaxed);
  entry->storage = fresh;
  return fresh;
}

bool GraphRegistry::pin(const std::string& path) {
  std::shared_ptr<Entry> entry = find_entry(path);
  if (entry == nullptr) return false;
  std::lock_guard<std::mutex> lock(entry->mu);
  StorageRef live = entry->storage.lock();
  if (live == nullptr) return false;
  entry->pinned = std::move(live);
  return true;
}

bool GraphRegistry::unpin(const std::string& path) {
  std::shared_ptr<Entry> entry = find_entry(path);
  if (entry == nullptr) return false;
  std::lock_guard<std::mutex> lock(entry->mu);
  entry->pinned = nullptr;
  return true;
}

bool GraphRegistry::evict(const std::string& path) {
  FileKey key;
  if (!file_key(path, key)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return false;
  table_.erase(it);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t GraphRegistry::evict_expired() {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t removed = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    Entry& e = *it->second;
    bool dead;
    {
      std::lock_guard<std::mutex> entry_lock(e.mu);
      dead = e.pinned == nullptr && e.storage.expired();
    }
    if (dead) {
      it = table_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void GraphRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  table_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  bytes_mapped_.store(0, std::memory_order_relaxed);
}

GraphRegistry::Stats GraphRegistry::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.bytes_mapped = bytes_mapped_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  out.entries = table_.size();
  for (const auto& [key, entry] : table_) {
    std::lock_guard<std::mutex> entry_lock(entry->mu);
    if (entry->pinned != nullptr) ++out.pinned_entries;
  }
  return out;
}

}  // namespace pasgal
