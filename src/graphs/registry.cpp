#include "graphs/registry.h"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <utility>

namespace pasgal {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

GraphRegistry& GraphRegistry::instance() {
  static GraphRegistry registry;
  return registry;
}

bool GraphRegistry::file_key(const std::string& path, FileKey& out) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return false;
  out.dev = static_cast<std::uint64_t>(st.st_dev);
  out.ino = static_cast<std::uint64_t>(st.st_ino);
  out.size = static_cast<std::uint64_t>(st.st_size);
  out.mtime_ns =
      static_cast<std::uint64_t>(st.st_mtim.tv_sec) * 1000000000ull +
      static_cast<std::uint64_t>(st.st_mtim.tv_nsec);
  return true;
}

std::shared_ptr<GraphRegistry::Entry> GraphRegistry::find_entry(
    const std::string& path) {
  FileKey key;
  if (!file_key(path, key)) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(key);
  return it == table_.end() ? nullptr : it->second;
}

StorageRef GraphRegistry::open_shared(
    const std::string& path, const std::function<StorageRef()>& opener) {
  FileKey key;
  if (!file_key(path, key)) return opener();

  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<Entry>& slot = table_[key];
    if (slot == nullptr) {
      slot = std::make_shared<Entry>();
      slot->seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    }
    entry = slot;
  }

  bool was_miss = false;
  StorageRef out;
  {
    std::lock_guard<std::mutex> open_lock(entry->mu);
    if (StorageRef live = entry->storage.lock()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      entry->last_use_ns = now_ns();
      out = std::move(live);
    } else {
      StorageRef fresh = opener();  // throws propagate; nothing is cached
      misses_.fetch_add(1, std::memory_order_relaxed);
      bytes_mapped_.fetch_add(fresh->bytes_mapped(),
                              std::memory_order_relaxed);
      entry->storage = fresh;
      // Accounted at what the handle keeps resident, not just the mapping:
      // a compressed open's decoded heap buffer is real memory the
      // admission/eviction math must see.
      entry->bytes = fresh->resident_bytes();
      entry->path = path;
      entry->last_use_ns = now_ns();
      was_miss = true;
      out = std::move(fresh);
    }
  }
  // Miss-path tombstone sweep, after the entry lock is released:
  // evict_expired() takes the table lock and then every entry lock, so
  // calling it while still holding this entry's lock would self-deadlock.
  // The entry just opened is live and survives the sweep.
  if (was_miss) evict_expired();
  return out;
}

bool GraphRegistry::pin(const std::string& path) {
  std::shared_ptr<Entry> entry = find_entry(path);
  if (entry == nullptr) return false;
  std::lock_guard<std::mutex> lock(entry->mu);
  StorageRef live = entry->storage.lock();
  if (live == nullptr) return false;
  entry->strong = std::move(live);
  entry->pinned = true;
  entry->last_use_ns = now_ns();
  return true;
}

bool GraphRegistry::retain(const std::string& path) {
  std::shared_ptr<Entry> entry = find_entry(path);
  if (entry == nullptr) return false;
  std::lock_guard<std::mutex> lock(entry->mu);
  StorageRef live = entry->storage.lock();
  if (live == nullptr) return false;
  entry->strong = std::move(live);
  // A pin is a stronger promise than a retain; keep it.
  entry->last_use_ns = now_ns();
  return true;
}

bool GraphRegistry::unpin(const std::string& path) {
  std::shared_ptr<Entry> entry = find_entry(path);
  if (entry == nullptr) return false;
  std::lock_guard<std::mutex> lock(entry->mu);
  entry->strong = nullptr;
  entry->pinned = false;
  return true;
}

bool GraphRegistry::evict(const std::string& path) {
  FileKey key;
  if (!file_key(path, key)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return false;
  table_.erase(it);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t GraphRegistry::evict_expired() {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t removed = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    Entry& e = *it->second;
    bool dead;
    {
      std::lock_guard<std::mutex> entry_lock(e.mu);
      dead = e.strong == nullptr && e.storage.expired();
    }
    if (dead) {
      it = table_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::uint64_t GraphRegistry::evict_lru(std::uint64_t bytes_needed) {
  std::lock_guard<std::mutex> lock(mu_);

  // Collect evictable candidates: retained (strong, unpinned) entries.
  struct Candidate {
    FileKey key;
    std::uint64_t last_use_ns;
    std::uint64_t seq;
    std::uint64_t bytes;
  };
  std::vector<Candidate> candidates;
  for (const auto& [key, entry] : table_) {
    std::lock_guard<std::mutex> entry_lock(entry->mu);
    if (entry->strong != nullptr && !entry->pinned) {
      candidates.push_back({key, entry->last_use_ns, entry->seq,
                            entry->bytes});
    }
  }
  // Equal timestamps happen (entries touched within one steady_clock tick);
  // the insertion sequence breaks the tie deterministically, oldest first.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.last_use_ns != b.last_use_ns) {
                return a.last_use_ns < b.last_use_ns;
              }
              return a.seq < b.seq;
            });

  std::uint64_t released = 0;
  for (const Candidate& c : candidates) {
    if (released >= bytes_needed) break;
    auto it = table_.find(c.key);
    if (it == table_.end()) continue;
    {
      // Re-check under the entry lock: a racing pin() wins.
      std::lock_guard<std::mutex> entry_lock(it->second->mu);
      if (it->second->strong == nullptr || it->second->pinned) continue;
      it->second->strong = nullptr;
    }
    table_.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    released += c.bytes;
  }
  return released;
}

void GraphRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  table_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  bytes_mapped_.store(0, std::memory_order_relaxed);
  next_seq_.store(0, std::memory_order_relaxed);
}

bool GraphRegistry::set_last_use_for_testing(const std::string& path,
                                             std::uint64_t ns) {
  std::shared_ptr<Entry> entry = find_entry(path);
  if (entry == nullptr) return false;
  std::lock_guard<std::mutex> lock(entry->mu);
  entry->last_use_ns = ns;
  return true;
}

GraphRegistry::Stats GraphRegistry::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.bytes_mapped = bytes_mapped_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  out.entries = table_.size();
  for (const auto& [key, entry] : table_) {
    std::lock_guard<std::mutex> entry_lock(entry->mu);
    bool live = !entry->storage.expired();
    if (live) out.resident_bytes += entry->bytes;
    if (entry->strong != nullptr) {
      if (entry->pinned) {
        ++out.pinned_entries;
        out.pinned_bytes += entry->bytes;
      } else {
        ++out.retained_entries;
        if (out.lru_last_use_ns == 0 ||
            entry->last_use_ns < out.lru_last_use_ns) {
          out.lru_last_use_ns = entry->last_use_ns;
        }
      }
    }
  }
  return out;
}

std::vector<GraphRegistry::EntryInfo> GraphRegistry::entry_stats() const {
  std::vector<EntryInfo> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(table_.size());
  for (const auto& [key, entry] : table_) {
    std::lock_guard<std::mutex> entry_lock(entry->mu);
    EntryInfo info;
    info.path = entry->path;
    info.bytes = entry->bytes;
    info.last_use_ns = entry->last_use_ns;
    info.pinned = entry->strong != nullptr && entry->pinned;
    info.retained = entry->strong != nullptr && !entry->pinned;
    info.live = !entry->storage.expired();
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace pasgal
