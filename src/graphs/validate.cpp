// Parallel CSR invariant validation (declared in graphs/graph.h).
//
// Every algorithm in the library does unchecked offsets[v] / targets[e]
// indexing, so a graph that gets past this check can be traversed without
// bounds checks. Reported context is the *first* violating index, which for
// file-loaded graphs names the corrupt record directly.
#include <atomic>

#include "graphs/graph.h"

namespace pasgal {

Status validate_csr(std::span<const EdgeId> offsets,
                    std::span<const VertexId> targets) {
  constexpr std::uint64_t kNone = static_cast<std::uint64_t>(-1);
  if (offsets.empty()) {
    if (targets.empty()) return Status::Ok();  // default-constructed Graph
    return Status::Failure(ErrorCategory::kValidation,
                           "empty offset array but " +
                               std::to_string(targets.size()) + " targets");
  }
  std::size_t n = offsets.size() - 1;
  std::size_t m = targets.size();
  if (n > static_cast<std::size_t>(kInvalidVertex)) {
    return Status::Failure(ErrorCategory::kValidation,
                           "vertex count " + std::to_string(n) +
                               " exceeds the 32-bit vertex-id space");
  }
  if (offsets[0] != 0) {
    return Status::Failure(ErrorCategory::kValidation,
                           "offsets[0] = " + std::to_string(offsets[0]) +
                               ", expected 0");
  }
  if (offsets[n] != m) {
    return Status::Failure(ErrorCategory::kValidation,
                           "offsets[n] = " + std::to_string(offsets[n]) +
                               " does not equal the edge count " +
                               std::to_string(m));
  }

  std::atomic<std::uint64_t> first_bad{kNone};
  parallel_for(0, n, [&](std::size_t v) {
    if (offsets[v] > offsets[v + 1]) {
      write_min(first_bad, static_cast<std::uint64_t>(v));
    }
  });
  if (std::uint64_t v = first_bad.load(std::memory_order_relaxed); v != kNone) {
    return Status::Failure(
        ErrorCategory::kValidation,
        "offsets are not monotone: offsets[" + std::to_string(v) + "] = " +
            std::to_string(offsets[v]) + " > offsets[" + std::to_string(v + 1) +
            "] = " + std::to_string(offsets[v + 1]));
  }

  first_bad.store(kNone, std::memory_order_relaxed);
  parallel_for(0, m, [&](std::size_t e) {
    if (targets[e] >= n) write_min(first_bad, static_cast<std::uint64_t>(e));
  });
  if (std::uint64_t e = first_bad.load(std::memory_order_relaxed); e != kNone) {
    return Status::Failure(
        ErrorCategory::kValidation,
        "edge " + std::to_string(e) + " targets vertex " +
            std::to_string(targets[e]) + " but the graph has only " +
            std::to_string(n) + " vertices");
  }
  return Status::Ok();
}

}  // namespace pasgal
