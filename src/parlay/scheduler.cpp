#include "parlay/scheduler.h"

#include <cstdlib>
#include <mutex>
#include <string>

namespace pasgal {

namespace {

thread_local int tls_worker_id = 0;

int default_num_workers() {
  if (const char* env = std::getenv("PASGAL_NUM_THREADS")) {
    int n = std::atoi(env);
    if (n >= 1) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::unique_ptr<Scheduler>& scheduler_slot() {
  static std::unique_ptr<Scheduler> slot;
  return slot;
}

std::mutex& scheduler_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

Scheduler& Scheduler::instance() {
  auto& slot = scheduler_slot();
  if (!slot) {
    std::lock_guard<std::mutex> lock(scheduler_mutex());
    if (!slot) slot.reset(new Scheduler(default_num_workers()));
  }
  return *slot;
}

void Scheduler::reset(int num_workers) {
  std::lock_guard<std::mutex> lock(scheduler_mutex());
  auto& slot = scheduler_slot();
  slot.reset();  // join old pool first
  slot.reset(new Scheduler(num_workers < 1 ? 1 : num_workers));
}

int Scheduler::worker_id() { return tls_worker_id; }

Scheduler::Scheduler(int num_workers)
    : num_workers_(num_workers),
      deques_(static_cast<std::size_t>(num_workers)),
      counters_(static_cast<std::size_t>(num_workers)) {
  tls_worker_id = 0;  // the constructing thread is worker 0
  threads_.reserve(static_cast<std::size_t>(num_workers_ - 1));
  for (int id = 1; id < num_workers_; ++id) {
    threads_.emplace_back([this, id] { worker_loop(id); });
  }
}

Scheduler::~Scheduler() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& t : threads_) t.join();
}

Job* Scheduler::try_steal(std::uint64_t& rng_state) {
  // xorshift for victim selection; try every worker once in a random rotation.
  rng_state ^= rng_state << 13;
  rng_state ^= rng_state >> 7;
  rng_state ^= rng_state << 17;
  int self = worker_id();
  int start = static_cast<int>(rng_state % static_cast<std::uint64_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i) {
    int victim = start + i;
    if (victim >= num_workers_) victim -= num_workers_;
    if (victim == self) continue;
    if (Job* job = deques_[static_cast<std::size_t>(victim)].steal_top()) {
      counters_[static_cast<std::size_t>(self)].steals.fetch_add(
          1, std::memory_order_relaxed);
      return job;
    }
  }
  return nullptr;
}

void Scheduler::execute_counted(Job* job) {
  // Only stolen/helped jobs pass through here, so the clock reads stay off
  // the par_do fast path; a stolen job is a whole fork subtree, which
  // amortizes the two reads.
  PaddedCounters& c = counters_[static_cast<std::size_t>(worker_id())];
  auto start = std::chrono::steady_clock::now();
  job->execute();
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
  c.busy_ns.fetch_add(static_cast<std::uint64_t>(ns), std::memory_order_relaxed);
  c.tasks.fetch_add(1, std::memory_order_relaxed);
}

std::vector<WorkerCounters> Scheduler::counters() const {
  std::vector<WorkerCounters> out(counters_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    out[i].steals = counters_[i].steals.load(std::memory_order_relaxed);
    out[i].tasks = counters_[i].tasks.load(std::memory_order_relaxed);
    out[i].busy_ns = counters_[i].busy_ns.load(std::memory_order_relaxed);
    out[i].idle_ns = counters_[i].idle_ns.load(std::memory_order_relaxed);
  }
  return out;
}

void Scheduler::wait_for(const Job& job) {
  std::uint64_t rng_state =
      0x9e3779b97f4a7c15ULL ^ (static_cast<std::uint64_t>(worker_id()) + 1);
  PaddedCounters& c = counters_[static_cast<std::size_t>(worker_id())];
  int failures = 0;
  while (!job.finished()) {
    if (Job* stolen = try_steal(rng_state)) {
      failures = 0;
      execute_counted(stolen);
    } else {
      auto start = std::chrono::steady_clock::now();
      if (++failures < 32) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
      c.idle_ns.fetch_add(static_cast<std::uint64_t>(ns),
                          std::memory_order_relaxed);
    }
  }
}

void Scheduler::worker_loop(int id) {
  tls_worker_id = id;
  std::uint64_t rng_state =
      0xbf58476d1ce4e5b9ULL ^ (static_cast<std::uint64_t>(id) + 1);
  PaddedCounters& c = counters_[static_cast<std::size_t>(id)];
  int failures = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (Job* job = try_steal(rng_state)) {
      failures = 0;
      execute_counted(job);
    } else {
      auto start = std::chrono::steady_clock::now();
      if (++failures < 32) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(
            std::chrono::microseconds(failures < 256 ? 50 : 500));
      }
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
      c.idle_ns.fetch_add(static_cast<std::uint64_t>(ns),
                          std::memory_order_relaxed);
    }
  }
}

}  // namespace pasgal
