// Parallel sequence primitives: tabulate, map, reduce, scan, pack, filter,
// flatten, histogram. All return std::vector and are deterministic.
#pragma once

#include <cstddef>
#include <functional>
#include <numeric>
#include <span>
#include <type_traits>
#include <vector>

#include "parlay/parallel.h"

namespace pasgal {

inline constexpr std::size_t kScanBlockSize = 2048;

// -- tabulate / map ---------------------------------------------------------

template <typename F>
auto tabulate(std::size_t n, const F& f) {
  using T = std::decay_t<decltype(f(std::size_t{0}))>;
  std::vector<T> out(n);
  parallel_for(0, n, [&](std::size_t i) { out[i] = f(i); });
  return out;
}

template <typename T, typename F>
auto map(std::span<const T> in, const F& f) {
  return tabulate(in.size(), [&](std::size_t i) { return f(in[i]); });
}

template <typename T>
std::vector<T> iota(std::size_t n) {
  return tabulate(n, [](std::size_t i) { return static_cast<T>(i); });
}

// -- reduce -----------------------------------------------------------------

// Reduce with an associative, commutative monoid (identity, combine).
template <typename T, typename Combine, typename Get>
T reduce_indexed(std::size_t n, T identity, const Combine& combine, const Get& get) {
  if (n == 0) return identity;
  std::size_t num_blocks = (n + kScanBlockSize - 1) / kScanBlockSize;
  if (num_blocks == 1) {
    T acc = identity;
    for (std::size_t i = 0; i < n; ++i) acc = combine(acc, get(i));
    return acc;
  }
  std::vector<T> partial(num_blocks);
  blocked_for(0, n, kScanBlockSize, [&](std::size_t b, std::size_t lo, std::size_t hi) {
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, get(i));
    partial[b] = acc;
  });
  T acc = identity;
  for (std::size_t b = 0; b < num_blocks; ++b) acc = combine(acc, partial[b]);
  return acc;
}

template <typename T, typename Combine>
T reduce(std::span<const T> in, T identity, const Combine& combine) {
  return reduce_indexed(in.size(), identity, combine,
                        [&](std::size_t i) { return in[i]; });
}

template <typename T>
T reduce_add(std::span<const T> in) {
  return reduce(in, T{}, std::plus<T>{});
}

template <typename Pred>
std::size_t count_if_index(std::size_t n, const Pred& pred) {
  return reduce_indexed(
      n, std::size_t{0}, std::plus<std::size_t>{},
      [&](std::size_t i) { return pred(i) ? std::size_t{1} : std::size_t{0}; });
}

template <typename T>
T reduce_max(std::span<const T> in, T identity) {
  return reduce(in, identity, [](T a, T b) { return a < b ? b : a; });
}

template <typename T>
T reduce_min(std::span<const T> in, T identity) {
  return reduce(in, identity, [](T a, T b) { return b < a ? b : a; });
}

// -- scan -------------------------------------------------------------------

// Exclusive prefix sum over get(i); writes n outputs via set(i, value) and
// returns the grand total. Two-pass blocked algorithm.
template <typename T, typename Get, typename Set>
T scan_indexed(std::size_t n, const Get& get, const Set& set) {
  if (n == 0) return T{};
  std::size_t num_blocks = (n + kScanBlockSize - 1) / kScanBlockSize;
  if (num_blocks == 1) {
    T acc{};
    for (std::size_t i = 0; i < n; ++i) {
      T v = get(i);
      set(i, acc);
      acc += v;
    }
    return acc;
  }
  std::vector<T> block_sum(num_blocks);
  blocked_for(0, n, kScanBlockSize, [&](std::size_t b, std::size_t lo, std::size_t hi) {
    T acc{};
    for (std::size_t i = lo; i < hi; ++i) acc += get(i);
    block_sum[b] = acc;
  });
  T total{};
  for (std::size_t b = 0; b < num_blocks; ++b) {
    T next = total + block_sum[b];
    block_sum[b] = total;
    total = next;
  }
  blocked_for(0, n, kScanBlockSize, [&](std::size_t b, std::size_t lo, std::size_t hi) {
    T acc = block_sum[b];
    for (std::size_t i = lo; i < hi; ++i) {
      T v = get(i);
      set(i, acc);
      acc += v;
    }
  });
  return total;
}

// Exclusive scan in place; returns the total.
template <typename T>
T scan_inplace(std::span<T> data) {
  return scan_indexed<T>(
      data.size(), [&](std::size_t i) { return data[i]; },
      [&](std::size_t i, T v) { data[i] = v; });
}

template <typename T>
std::pair<std::vector<T>, T> scan(std::span<const T> in) {
  std::vector<T> out(in.size());
  T total = scan_indexed<T>(
      in.size(), [&](std::size_t i) { return in[i]; },
      [&](std::size_t i, T v) { out[i] = v; });
  return {std::move(out), total};
}

// -- pack / filter ----------------------------------------------------------

// Keep element i iff pred(i); produces get(i) for kept elements, stably.
template <typename T, typename Pred, typename Get>
std::vector<T> pack_indexed(std::size_t n, const Pred& pred, const Get& get) {
  std::vector<std::size_t> offsets(n);
  std::size_t total = scan_indexed<std::size_t>(
      n, [&](std::size_t i) { return pred(i) ? std::size_t{1} : std::size_t{0}; },
      [&](std::size_t i, std::size_t v) { offsets[i] = v; });
  std::vector<T> out(total);
  parallel_for(0, n, [&](std::size_t i) {
    if (pred(i)) out[offsets[i]] = get(i);
  });
  return out;
}

template <typename T, typename Pred>
std::vector<T> filter(std::span<const T> in, const Pred& pred) {
  return pack_indexed<T>(
      in.size(), [&](std::size_t i) { return pred(in[i]); },
      [&](std::size_t i) { return in[i]; });
}

// Indices i in [0, n) where pred(i) holds, in increasing order.
template <typename Pred>
std::vector<std::size_t> pack_index(std::size_t n, const Pred& pred) {
  return pack_indexed<std::size_t>(n, pred, [](std::size_t i) { return i; });
}

// -- flatten ----------------------------------------------------------------

template <typename T>
std::vector<T> flatten(const std::vector<std::vector<T>>& nested) {
  std::size_t k = nested.size();
  std::vector<std::size_t> offsets(k);
  std::size_t total = scan_indexed<std::size_t>(
      k, [&](std::size_t i) { return nested[i].size(); },
      [&](std::size_t i, std::size_t v) { offsets[i] = v; });
  std::vector<T> out(total);
  parallel_for(
      0, k,
      [&](std::size_t i) {
        std::copy(nested[i].begin(), nested[i].end(), out.begin() + offsets[i]);
      },
      1);
  return out;
}

// -- histogram --------------------------------------------------------------

// Counts occurrences of keys in [0, num_buckets). Uses atomics; suitable for
// moderate bucket counts.
template <typename Key>
std::vector<std::size_t> histogram(std::span<const Key> keys, std::size_t num_buckets) {
  std::vector<std::atomic<std::size_t>> counts(num_buckets);
  parallel_for(0, num_buckets,
               [&](std::size_t i) { counts[i].store(0, std::memory_order_relaxed); });
  parallel_for(0, keys.size(), [&](std::size_t i) {
    counts[static_cast<std::size_t>(keys[i])].fetch_add(1, std::memory_order_relaxed);
  });
  return tabulate(num_buckets, [&](std::size_t i) {
    return counts[i].load(std::memory_order_relaxed);
  });
}

// -- atomic helpers ---------------------------------------------------------

// write_min / write_max: lock-free priority update; returns true if the
// stored value changed.
template <typename T>
bool write_min(std::atomic<T>& target, T value) {
  T current = target.load(std::memory_order_relaxed);
  while (value < current) {
    if (target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

template <typename T>
bool write_max(std::atomic<T>& target, T value) {
  T current = target.load(std::memory_order_relaxed);
  while (current < value) {
    if (target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

}  // namespace pasgal
