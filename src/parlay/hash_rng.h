// Deterministic hash-based pseudo-randomness.
//
// Parallel algorithms in this library never share mutable RNG state; instead
// each call site derives its random value from (seed, index) with a strong
// integer mixer, so results are reproducible regardless of the schedule.
#pragma once

#include <cstdint>

namespace pasgal {

// Finalizer from splitmix64; passes practical avalanche tests.
constexpr std::uint64_t hash64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint32_t hash32(std::uint32_t x) {
  x = ((x >> 16) ^ x) * 0x45d9f3bU;
  x = ((x >> 16) ^ x) * 0x45d9f3bU;
  return (x >> 16) ^ x;
}

// A stateless random source: `Random r(seed); r.ith_rand(i)` is a stream of
// 64-bit values indexed by i. `fork(i)` derives an independent stream.
class Random {
 public:
  explicit constexpr Random(std::uint64_t seed = 0) : seed_(seed) {}

  constexpr std::uint64_t ith_rand(std::uint64_t i) const {
    return hash64(seed_ ^ hash64(i));
  }

  constexpr Random fork(std::uint64_t i) const { return Random(ith_rand(i)); }

  // Uniform in [0, bound). Slightly biased for huge bounds; fine for
  // algorithmic sampling.
  constexpr std::uint64_t ith_rand(std::uint64_t i, std::uint64_t bound) const {
    return ith_rand(i) % bound;
  }

 private:
  std::uint64_t seed_;
};

}  // namespace pasgal
