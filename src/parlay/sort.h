// Parallel sorting: comparison merge sort and stable LSD radix sort.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "parlay/parallel.h"
#include "parlay/primitives.h"

namespace pasgal {

namespace internal {

inline constexpr std::size_t kSortBase = 8192;

template <typename It, typename OutIt, typename Cmp>
void parallel_merge(It a_lo, It a_hi, It b_lo, It b_hi, OutIt out, const Cmp& cmp) {
  std::size_t na = static_cast<std::size_t>(a_hi - a_lo);
  std::size_t nb = static_cast<std::size_t>(b_hi - b_lo);
  if (na + nb <= kSortBase) {
    std::merge(a_lo, a_hi, b_lo, b_hi, out, cmp);
    return;
  }
  // Split the larger run at its median; binary-search the split point in the
  // other run. The bound choice (lower vs upper) keeps the merge stable with
  // run A's elements first among equals.
  It a_mid, b_mid;
  if (na >= nb) {
    a_mid = a_lo + static_cast<std::ptrdiff_t>(na / 2);
    b_mid = std::lower_bound(b_lo, b_hi, *a_mid, cmp);
  } else {
    b_mid = b_lo + static_cast<std::ptrdiff_t>(nb / 2);
    a_mid = std::upper_bound(a_lo, a_hi, *b_mid, cmp);
  }
  OutIt out_mid = out + (a_mid - a_lo) + (b_mid - b_lo);
  par_do([&] { parallel_merge(a_lo, a_mid, b_lo, b_mid, out, cmp); },
         [&] { parallel_merge(a_mid, a_hi, b_mid, b_hi, out_mid, cmp); });
}

// Sorts [lo, hi); `to_buf` says whether the sorted output should land in the
// buffer range (true) or in place (false).
template <typename T, typename Cmp>
void merge_sort_recurse(T* lo, T* hi, T* buf, bool to_buf, const Cmp& cmp) {
  std::size_t n = static_cast<std::size_t>(hi - lo);
  if (n <= kSortBase) {
    std::stable_sort(lo, hi, cmp);
    if (to_buf) std::copy(lo, hi, buf);
    return;
  }
  std::size_t half = n / 2;
  par_do([&] { merge_sort_recurse(lo, lo + half, buf, !to_buf, cmp); },
         [&] { merge_sort_recurse(lo + half, hi, buf + half, !to_buf, cmp); });
  if (to_buf) {
    parallel_merge(lo, lo + half, lo + half, hi, buf, cmp);
  } else {
    parallel_merge(buf, buf + half, buf + half, buf + static_cast<std::ptrdiff_t>(n),
                   lo, cmp);
  }
}

}  // namespace internal

// Stable parallel comparison sort (in place).
template <typename T, typename Cmp = std::less<T>>
void sort_inplace(std::span<T> data, const Cmp& cmp = Cmp{}) {
  if (data.size() <= internal::kSortBase) {
    std::stable_sort(data.begin(), data.end(), cmp);
    return;
  }
  std::vector<T> buffer(data.size());
  internal::merge_sort_recurse(data.data(), data.data() + data.size(),
                               buffer.data(), /*to_buf=*/false, cmp);
}

template <typename T, typename Cmp = std::less<T>>
std::vector<T> sorted(std::span<const T> data, const Cmp& cmp = Cmp{}) {
  std::vector<T> out(data.begin(), data.end());
  sort_inplace(std::span<T>(out), cmp);
  return out;
}

// Stable LSD radix sort by key(x) in [0, 2^key_bits). 8 bits per pass,
// per-block counting for parallelism.
template <typename T, typename KeyFn>
void integer_sort_inplace(std::span<T> data, const KeyFn& key, int key_bits) {
  std::size_t n = data.size();
  if (n <= 1) return;
  constexpr int kBitsPerPass = 8;
  constexpr std::size_t kBuckets = 1 << kBitsPerPass;
  std::size_t block = std::max<std::size_t>(kScanBlockSize, n / (8 * static_cast<std::size_t>(num_workers()) + 1));
  std::size_t num_blocks = (n + block - 1) / block;
  std::vector<T> buffer(n);
  T* src = data.data();
  T* dst = buffer.data();
  int passes = (key_bits + kBitsPerPass - 1) / kBitsPerPass;
  std::vector<std::size_t> counts(num_blocks * kBuckets);
  for (int pass = 0; pass < passes; ++pass) {
    int shift = pass * kBitsPerPass;
    blocked_for(0, n, block, [&](std::size_t b, std::size_t lo, std::size_t hi) {
      std::size_t* c = &counts[b * kBuckets];
      std::fill(c, c + kBuckets, 0);
      for (std::size_t i = lo; i < hi; ++i) {
        ++c[(static_cast<std::uint64_t>(key(src[i])) >> shift) & (kBuckets - 1)];
      }
    });
    // Column-major exclusive scan: bucket-major then block-major gives a
    // stable global order.
    std::size_t total = 0;
    for (std::size_t bucket = 0; bucket < kBuckets; ++bucket) {
      for (std::size_t b = 0; b < num_blocks; ++b) {
        std::size_t c = counts[b * kBuckets + bucket];
        counts[b * kBuckets + bucket] = total;
        total += c;
      }
    }
    blocked_for(0, n, block, [&](std::size_t b, std::size_t lo, std::size_t hi) {
      std::size_t* offsets = &counts[b * kBuckets];
      for (std::size_t i = lo; i < hi; ++i) {
        std::size_t bucket =
            (static_cast<std::uint64_t>(key(src[i])) >> shift) & (kBuckets - 1);
        dst[offsets[bucket]++] = src[i];
      }
    });
    std::swap(src, dst);
  }
  if (src != data.data()) {
    parallel_for(0, n, [&](std::size_t i) { data[i] = src[i]; });
  }
}

}  // namespace pasgal
