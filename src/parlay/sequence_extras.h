// Higher-level sequence operations built on sort/scan: random permutation,
// duplicate removal, group-by (semisort-style API). Completes the substrate
// parity with the upstream library's utility layer.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "parlay/hash_rng.h"
#include "parlay/primitives.h"
#include "parlay/sort.h"

namespace pasgal {

// Deterministic pseudo-random permutation of [0, n): sort indices by a
// hashed key (ties broken by index, so the result is schedule-independent).
inline std::vector<std::uint32_t> random_permutation(std::size_t n,
                                                     std::uint64_t seed = 1) {
  Random rng(seed);
  auto perm = tabulate(n, [](std::size_t i) { return static_cast<std::uint32_t>(i); });
  sort_inplace(std::span<std::uint32_t>(perm),
               [&](std::uint32_t a, std::uint32_t b) {
                 auto ka = rng.ith_rand(a), kb = rng.ith_rand(b);
                 return ka != kb ? ka < kb : a < b;
               });
  return perm;
}

// Sorted distinct values of the input.
template <typename T>
std::vector<T> remove_duplicates(std::span<const T> in) {
  if (in.empty()) return {};
  auto data = sorted(in);
  return pack_indexed<T>(
      data.size(),
      [&](std::size_t i) { return i == 0 || data[i] != data[i - 1]; },
      [&](std::size_t i) { return data[i]; });
}

template <typename T>
std::size_t count_distinct(std::span<const T> in) {
  if (in.empty()) return 0;
  auto data = sorted(in);
  return count_if_index(data.size(), [&](std::size_t i) {
    return i == 0 || data[i] != data[i - 1];
  });
}

// Semisort-style group-by: returns (key, all values with that key), keys in
// ascending order, values in stable input order.
template <typename K, typename V>
std::vector<std::pair<K, std::vector<V>>> group_by_key(
    std::span<const std::pair<K, V>> in) {
  std::size_t n = in.size();
  if (n == 0) return {};
  auto data = tabulate(n, [&](std::size_t i) { return in[i]; });
  sort_inplace(std::span<std::pair<K, V>>(data),
               [](const std::pair<K, V>& a, const std::pair<K, V>& b) {
                 return a.first < b.first;
               });
  auto starts = pack_index(n, [&](std::size_t i) {
    return i == 0 || data[i].first != data[i - 1].first;
  });
  std::vector<std::pair<K, std::vector<V>>> groups(starts.size());
  parallel_for(
      0, starts.size(),
      [&](std::size_t gi) {
        std::size_t lo = starts[gi];
        std::size_t hi = gi + 1 < starts.size() ? starts[gi + 1] : n;
        groups[gi].first = data[lo].first;
        groups[gi].second.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          groups[gi].second.push_back(data[i].second);
        }
      },
      1);
  return groups;
}

}  // namespace pasgal
