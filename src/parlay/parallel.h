// Parallel loop primitives on top of the fork-join scheduler.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>

#include "parlay/scheduler.h"

namespace pasgal {

namespace internal {

template <typename F>
void parallel_for_recurse(std::size_t lo, std::size_t hi, const F& f,
                          std::size_t granularity) {
  if (hi - lo <= granularity) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
  } else {
    std::size_t mid = lo + (hi - lo) / 2;
    par_do([&] { parallel_for_recurse(lo, mid, f, granularity); },
           [&] { parallel_for_recurse(mid, hi, f, granularity); });
  }
}

// Heuristic leaf size: enough chunks for load balance (8 per worker at the
// top level, more as the range shrinks), but never microscopic leaves.
inline std::size_t auto_granularity(std::size_t n) {
  int p = num_workers();
  if (p == 1) return n == 0 ? 1 : n;
  std::size_t chunks = static_cast<std::size_t>(p) * 8;
  std::size_t g = n / chunks;
  return std::clamp<std::size_t>(g, 1, 4096);
}

}  // namespace internal

// Apply f(i) for each i in [start, end), in parallel. `granularity` is the
// leaf size below which iterations run sequentially (0 = automatic).
template <typename F>
void parallel_for(std::size_t start, std::size_t end, const F& f,
                  std::size_t granularity = 0) {
  if (start >= end) return;
  std::size_t n = end - start;
  if (granularity == 0) granularity = internal::auto_granularity(n);
  if (n <= granularity || num_workers() == 1) {
    for (std::size_t i = start; i < end; ++i) f(i);
  } else {
    internal::parallel_for_recurse(start, end, f, granularity);
  }
}

// Apply f(block_lo, block_hi) over contiguous blocks of [start, end) in
// parallel; the callee handles a whole block (useful when per-block state,
// e.g. a local buffer, is worth amortizing).
template <typename F>
void blocked_for(std::size_t start, std::size_t end, std::size_t block_size,
                 const F& f) {
  if (start >= end) return;
  std::size_t n = end - start;
  std::size_t num_blocks = (n + block_size - 1) / block_size;
  parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        std::size_t lo = start + b * block_size;
        std::size_t hi = std::min(end, lo + block_size);
        f(b, lo, hi);
      },
      1);
}

}  // namespace pasgal
