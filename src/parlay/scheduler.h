// Work-stealing fork-join scheduler.
//
// This is the concurrency substrate of the library, playing the role
// ParlayLib plays for the original PASGAL: binary fork-join (`par_do`)
// on top of per-worker Chase-Lev work-stealing deques.
//
// Design notes:
//  * Jobs are stack-allocated in the forking frame; a job is a pointer to a
//    type-erased callable plus a completion flag. The forker either pops its
//    own job back (the common, allocation-free fast path) or, if a thief
//    stole it, helps by stealing other work until the thief finishes it.
//  * Deques are bounded (per-worker). If a deque ever fills up, `par_do`
//    degrades gracefully to sequential execution, which is always correct.
//  * Thieves back off exponentially (yield, then short sleeps) so an idle
//    pool does not burn cores.
//  * The pool size is fixed at construction. `Scheduler::reset(n)` tears the
//    pool down and rebuilds it; this is intended for tests and benchmarks,
//    not for use while parallel work is in flight.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace pasgal {

// A unit of schedulable work. Instances live on the stack of the forking
// frame; `done` is set (with release ordering) after the callable returns.
class Job {
 public:
  virtual void execute() = 0;

  bool finished() const { return done_.load(std::memory_order_acquire); }
  void mark_done() { done_.store(true, std::memory_order_release); }

 protected:
  ~Job() = default;

 private:
  std::atomic<bool> done_{false};
};

template <typename F>
class FuncJob final : public Job {
 public:
  explicit FuncJob(F& f) : f_(f) {}
  void execute() override {
    f_();
    mark_done();
  }

 private:
  F& f_;
};

// Bounded Chase-Lev deque. The owner pushes/pops at the bottom; thieves take
// from the top. Capacity must be a power of two.
class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(std::size_t capacity_log2 = 13)
      : mask_((std::size_t{1} << capacity_log2) - 1),
        buffer_(std::size_t{1} << capacity_log2) {
    for (auto& slot : buffer_) slot.store(nullptr, std::memory_order_relaxed);
  }

  // Owner only. Returns false if the deque is full.
  bool push_bottom(Job* job) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_acquire);
    if (static_cast<std::size_t>(b - t) > mask_) return false;  // full
    buffer_[static_cast<std::size_t>(b) & mask_].store(job, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  // Owner only. Returns nullptr if empty or lost the race on the last item.
  Job* pop_bottom() {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Job* job = buffer_[static_cast<std::size_t>(b) & mask_].load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race with thieves via CAS on top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        job = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return job;
  }

  // Any thread. Returns nullptr if empty or lost a race.
  Job* steal_top() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;  // empty
    Job* job = buffer_[static_cast<std::size_t>(t) & mask_].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race
    }
    return job;
  }

 private:
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::size_t mask_;
  std::vector<std::atomic<Job*>> buffer_;
};

// Per-worker scheduler activity over some interval. Snapshots are cheap and
// monotone for the lifetime of a pool; the telemetry layer diffs two
// snapshots to attribute scheduler behaviour to one algorithm run.
//
//   steals  — jobs successfully taken from another worker's deque
//   tasks   — jobs executed via the steal/help paths (the par_do fast path,
//             where the forker pops its own job back, is deliberately not
//             counted: it would put bookkeeping on the fork hot path)
//   busy_ns — wall time spent executing those stolen/helped jobs
//   idle_ns — wall time spent in the back-off loop (yields and sleeps)
struct WorkerCounters {
  std::uint64_t steals = 0;
  std::uint64_t tasks = 0;
  std::uint64_t busy_ns = 0;
  std::uint64_t idle_ns = 0;
};

class Scheduler {
 public:
  // Number of workers (including the calling/main thread as worker 0).
  // Defaults to PASGAL_NUM_THREADS if set, else hardware concurrency.
  static Scheduler& instance();

  // Tear down and rebuild the pool with `num_workers` workers. Must not be
  // called while parallel work is running. Intended for tests/benches.
  static void reset(int num_workers);

  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  int num_workers() const { return num_workers_; }

  // Index of the calling thread within the pool; threads that are not pool
  // members (only possible if the user spawns their own threads) map to 0.
  static int worker_id();

  // Push a job onto the calling worker's deque. Returns false if full.
  bool push_local(Job* job) { return deques_[checked_worker_id()].push_bottom(job); }

  // Pop the most recently pushed job from the calling worker's deque.
  Job* pop_local() { return deques_[checked_worker_id()].pop_bottom(); }

  // Cooperatively wait for `job` to finish, stealing other work meanwhile.
  void wait_for(const Job& job);

  // Snapshot of every worker's counters since this pool was built. Each slot
  // is written only by its owning worker (relaxed atomics, cache-line
  // padded), so reading a snapshot never perturbs the workers.
  std::vector<WorkerCounters> counters() const;

 private:
  explicit Scheduler(int num_workers);

  int checked_worker_id() const {
    int id = worker_id();
    assert(id >= 0 && id < num_workers_);
    return id;
  }

  Job* try_steal(std::uint64_t& rng_state);
  void worker_loop(int id);

  struct alignas(64) PaddedCounters {
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> idle_ns{0};
  };
  // Execute a stolen/helped job, charging busy time to the calling worker.
  void execute_counted(Job* job);

  int num_workers_;
  std::atomic<bool> shutdown_{false};
  std::vector<WorkStealingDeque> deques_;
  std::vector<PaddedCounters> counters_;
  std::vector<std::thread> threads_;
};

inline int num_workers() { return Scheduler::instance().num_workers(); }
inline int worker_id() { return Scheduler::worker_id(); }

// Run `left()` and `right()`, potentially in parallel. Both complete before
// par_do returns. Nested calls are fine and are the normal mode of use.
template <typename L, typename R>
void par_do(L&& left, R&& right) {
  Scheduler& sched = Scheduler::instance();
  if (sched.num_workers() == 1) {
    left();
    right();
    return;
  }
  auto right_wrapper = [&right] { right(); };
  FuncJob<decltype(right_wrapper)> job(right_wrapper);
  if (!sched.push_local(&job)) {  // deque full: degrade to sequential
    left();
    right();
    return;
  }
  left();
  // All jobs forked inside left() have been joined by the time it returns,
  // so the bottom of our deque is either `job` or empty (if stolen).
  Job* mine = sched.pop_local();
  if (mine != nullptr) {
    assert(mine == &job);
    mine->execute();
  } else {
    sched.wait_for(job);
  }
}

}  // namespace pasgal
