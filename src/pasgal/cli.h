// Command-line plumbing shared by every driver (apps/ and tools): checked
// integer parsing, `kind:field:field` spec splitting, raw flag iteration,
// and — on top of those — typed option declarations (`OptionSet`) so a flag
// like `--json-metrics` is declared once, with its range and help text, and
// reused by all five drivers instead of being re-parsed ad hoc in each.
//
// Lives in the library (not apps/) so tests and bench/ use the same parsing
// and get the same usage errors; everything throws typed pasgal::Error
// (kUsage), which run_app() maps to exit code 2.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "pasgal/error.h"

namespace pasgal::cli {

// --- checked integer parsing -------------------------------------------------

// Full-string strtoll with errno/endptr checks: "abc", "12abc", "" and
// out-of-range values are all errors (the old parser silently mapped them
// to 0, so `grid:abc:10` ran a degenerate grid instead of failing).
long long parse_int(const std::string& text, const std::string& what,
                    long long min_value, long long max_value,
                    ErrorCategory category);

// Value of a command-line flag (usage errors, exit code 2).
long long parse_flag_int(const std::string& flag, const char* value,
                         long long min_value, long long max_value);

// --- batch source lists ------------------------------------------------------

// Parses a `--sources` / `sources=` value into a vertex list: either an
// inline comma-separated list ("0,17,42") or, when `allow_file` is set, a
// `@file` reference whose contents are whitespace- or comma-separated vertex
// ids. Malformed entries, an empty list, duplicates, and more than
// kMaxBatchSources entries are typed kUsage errors (an unreadable @file is
// kIo). Vertices are range-checked against the graph later, by
// check_batch_sources — this layer does not know n. The server passes
// allow_file=false: a remote peer must not name paths on the serving host.
std::vector<std::uint32_t> parse_sources(const std::string& text,
                                         bool allow_file = true);

// --- generator spec parsing --------------------------------------------------

// A colon-separated `kind:field:field...` spec (graph generator specs, bench
// suite entries).
struct Spec {
  std::string text;
  std::string kind;
  std::vector<std::string> fields;  // fields after the kind

  // i is 1-based field position within the spec (kind is field 0).
  long long required(std::size_t i, const char* what, long long min_value,
                     long long max_value) const;
  long long optional(std::size_t i, const char* what, long long min_value,
                     long long max_value, long long fallback) const;
  void expect_at_most(std::size_t count) const;
};

Spec split_spec(const std::string& spec);

// --- raw flag iteration ------------------------------------------------------

// `-x value` pairs plus boolean switches (--validate). Unknown flags and
// missing values are usage errors — previously they were silently ignored,
// so `bfs g.adj -z 5` ran with defaults.
class FlagParser {
 public:
  FlagParser(int argc, char** argv, int first)
      : argc_(argc), argv_(argv), i_(first) {}

  bool next() {
    if (i_ >= argc_) return false;
    flag_ = argv_[i_];
    ++i_;
    return true;
  }

  const std::string& flag() const { return flag_; }

  const char* value() {
    if (i_ >= argc_) {
      throw Error(ErrorCategory::kUsage, "flag " + flag_ + " expects a value");
    }
    return argv_[i_++];
  }

  [[noreturn]] void unknown() const {
    throw Error(ErrorCategory::kUsage, "unknown flag '" + flag_ + "'");
  }

 private:
  int argc_;
  char** argv_;
  int i_;
  std::string flag_;
};

// --- typed option declarations -----------------------------------------------

// Declarative flag set: each driver binds its variables once, then parse()
// walks argv applying values (with range checks) or rejecting unknown flags.
// usage() renders the one-line summary for the driver's usage message.
class OptionSet {
 public:
  // Boolean switch: `--validate`.
  OptionSet& flag(std::string name, bool* target, std::string value_name = "");

  // Integer-valued flag with range check; T is any integral type. The
  // optional `seen` out-flag records that the flag was given explicitly,
  // for drivers that must distinguish a default from a user choice (sssp
  // rejects -w combined with a weighted input file).
  template <typename T>
  OptionSet& integer(std::string name, T* target, long long min_value,
                     long long max_value, std::string value_name,
                     bool* seen = nullptr) {
    return add_integer(
        std::move(name), min_value, max_value, std::move(value_name),
        [target, seen](long long v) {
          *target = static_cast<T>(v);
          if (seen != nullptr) *seen = true;
        });
  }

  // Real-valued flag with range check: `--epsilon 1e-9`. Full-string strtod
  // parsing — "abc", "1.0x" and NaN are usage errors, like parse_int above.
  OptionSet& real(std::string name, double* target, double min_value,
                  double max_value, std::string value_name);

  // Free-form string flag: `--json-metrics <path>`.
  OptionSet& text(std::string name, std::string* target,
                  std::string value_name);

  // String flag restricted to a closed set: `-a pasgal|gbbs|...`. The check
  // runs at parse time, so drivers no longer validate the variant by hand.
  // `seen` works as for integer(): set when the flag was given explicitly
  // (batch mode must distinguish a default algorithm from a user choice).
  OptionSet& choice(std::string name, std::string* target,
                    std::vector<std::string> allowed, bool* seen = nullptr);

  // Applies flags argv[first..). Throws kUsage on unknown flags, missing or
  // out-of-range values, and disallowed choice values.
  void parse(int argc, char** argv, int first) const;

  // "[-s source] [-a pasgal|gbbs] [--validate]" — for usage lines.
  std::string usage() const;

 private:
  struct Option {
    std::string name;
    bool takes_value;
    std::string value_name;  // rendered in usage(); empty for switches
    std::function<void(const std::string& flag, const char* value)> apply;
  };

  OptionSet& add_integer(std::string name, long long min_value,
                         long long max_value, std::string value_name,
                         std::function<void(long long)> set);

  std::vector<Option> options_;
};

// Flags every driver shares, declared in one place. `repeats` is the trial
// count; `json_metrics`, when non-empty, is where the driver writes its
// versioned metrics document (telemetry.h).
struct CommonOptions {
  bool validate = false;
  long long repeats = 3;
  std::string json_metrics;
  // How `.pgr` inputs are materialized: "mmap" (zero-copy spans into the
  // file) or "copy" (heap-backed, full validation). Ignored for other
  // formats, which always copy.
  std::string load_mode = "mmap";
  // Serving-mode harness: re-open + re-run the input this many extra times
  // in one process. The first (cold) open of a mmap'ed .pgr is pinned in
  // the GraphRegistry, so every warm re-open is a registry hit sharing the
  // cold mapping (see apps/common.h ServeHarness).
  long long serve = 0;
  // Shard-at-a-time execution for `.pgr` inputs: a window size in MiB, or
  // "auto" (shard only when the in-core footprint exceeds the memory
  // ceiling). Empty = in-core. Parsed into a PgrShardSpec by apps/common.h.
  std::string shard_mb;
  // Memory-ceiling override in MiB (same knob as PASGAL_MEM_LIMIT_MB; both
  // set at once is a kUsage conflict). 0 = no override.
  long long mem_limit_mb = 0;

  void declare(OptionSet& opts);
};

}  // namespace pasgal::cli
