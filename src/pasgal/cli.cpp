#include "pasgal/cli.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "pasgal/options.h"
#include "pasgal/resource.h"

namespace pasgal::cli {

long long parse_int(const std::string& text, const std::string& what,
                    long long min_value, long long max_value,
                    ErrorCategory category) {
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size()) {
    throw Error(category, what + ": '" + text + "' is not an integer");
  }
  if (errno == ERANGE || value < min_value || value > max_value) {
    throw Error(category, what + ": " + text + " is out of range [" +
                              std::to_string(min_value) + ", " +
                              std::to_string(max_value) + "]");
  }
  return value;
}

long long parse_flag_int(const std::string& flag, const char* value,
                         long long min_value, long long max_value) {
  return parse_int(value, "flag " + flag, min_value, max_value,
                   ErrorCategory::kUsage);
}

std::vector<std::uint32_t> parse_sources(const std::string& text,
                                         bool allow_file) {
  std::string list = text;
  bool from_file = false;
  if (!text.empty() && text[0] == '@') {
    from_file = true;
    if (!allow_file) {
      throw Error(ErrorCategory::kUsage,
                  "sources: @file references are not accepted here");
    }
    std::string path = text.substr(1);
    std::ifstream in(path);
    if (!in) {
      throw Error(ErrorCategory::kIo, "cannot open sources file", path);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) {
      throw Error(ErrorCategory::kIo, "read failure on sources file", path);
    }
    list = buf.str();
    // Files separate ids with whitespace or commas; normalize to the inline
    // comma form so one tokenizer below serves both.
    for (char& c : list) {
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = ',';
    }
  }

  // kInvalidVertex (2^32 - 1) is the library's sentinel (hash-bag empty
  // slots, unfilled edge_map packs), so the largest usable id is 2^32 - 2.
  constexpr long long kMaxVertex = 0xFFFFFFFELL;
  std::vector<std::uint32_t> sources;
  std::unordered_set<std::uint32_t> dedup;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    std::string token = list.substr(start, comma - start);
    start = comma + 1;
    if (token.empty()) {
      // Whitespace normalization leaves blank runs in file input; an inline
      // list with a blank entry ("0,,5" or a trailing comma) is malformed.
      if (from_file) continue;
      throw Error(ErrorCategory::kUsage, "sources: empty entry in '" + text +
                                             "' (expected v0,v1,...)");
    }
    long long v = parse_int(token, "sources entry", 0, kMaxVertex,
                            ErrorCategory::kUsage);
    auto id = static_cast<std::uint32_t>(v);
    if (!dedup.insert(id).second) {
      throw Error(ErrorCategory::kUsage,
                  "sources: duplicate vertex " + token);
    }
    sources.push_back(id);
    if (sources.size() > kMaxBatchSources) {
      throw Error(ErrorCategory::kUsage,
                  "sources: more than " + std::to_string(kMaxBatchSources) +
                      " entries (one source per bit of the batch mask)");
    }
  }
  if (sources.empty()) {
    throw Error(ErrorCategory::kUsage, "sources: empty list");
  }
  return sources;
}

long long Spec::required(std::size_t i, const char* what, long long min_value,
                         long long max_value) const {
  if (fields.size() < i || fields[i - 1].empty()) {
    throw Error(ErrorCategory::kUsage,
                "spec '" + text + "': missing field <" + what + ">");
  }
  return parse_int(fields[i - 1],
                   "spec '" + text + "' field <" + std::string(what) + ">",
                   min_value, max_value, ErrorCategory::kUsage);
}

long long Spec::optional(std::size_t i, const char* what, long long min_value,
                         long long max_value, long long fallback) const {
  if (fields.size() < i) return fallback;
  return parse_int(fields[i - 1],
                   "spec '" + text + "' field <" + std::string(what) + ">",
                   min_value, max_value, ErrorCategory::kUsage);
}

void Spec::expect_at_most(std::size_t count) const {
  if (fields.size() > count) {
    throw Error(ErrorCategory::kUsage, "spec '" + text +
                                           "': unexpected extra field '" +
                                           fields[count] + "'");
  }
}

Spec split_spec(const std::string& spec) {
  Spec out;
  out.text = spec;
  std::size_t start = 0;
  bool first = true;
  while (start <= spec.size()) {
    std::size_t colon = spec.find(':', start);
    if (colon == std::string::npos) colon = spec.size();
    std::string part = spec.substr(start, colon - start);
    if (first) {
      out.kind = std::move(part);
      first = false;
    } else {
      out.fields.push_back(std::move(part));
    }
    start = colon + 1;
  }
  return out;
}

OptionSet& OptionSet::flag(std::string name, bool* target,
                           std::string value_name) {
  options_.push_back({std::move(name), false, std::move(value_name),
                      [target](const std::string&, const char*) {
                        *target = true;
                      }});
  return *this;
}

OptionSet& OptionSet::add_integer(std::string name, long long min_value,
                                  long long max_value, std::string value_name,
                                  std::function<void(long long)> set) {
  options_.push_back(
      {std::move(name), true, std::move(value_name),
       [min_value, max_value, set = std::move(set)](const std::string& flag,
                                                    const char* value) {
         set(parse_flag_int(flag, value, min_value, max_value));
       }});
  return *this;
}

OptionSet& OptionSet::real(std::string name, double* target, double min_value,
                           double max_value, std::string value_name) {
  options_.push_back(
      {std::move(name), true, std::move(value_name),
       [target, min_value, max_value](const std::string& flag,
                                      const char* value) {
         errno = 0;
         char* end = nullptr;
         double v = std::strtod(value, &end);
         if (*value == '\0' || end == value || *end != '\0') {
           throw Error(ErrorCategory::kUsage, "flag " + flag + ": '" + value +
                                                  "' is not a number");
         }
         // NaN compares false against any range; != catches it too.
         if (errno == ERANGE || !(v >= min_value) || !(v <= max_value)) {
           throw Error(ErrorCategory::kUsage,
                       "flag " + flag + ": " + value + " is out of range");
         }
         *target = v;
       }});
  return *this;
}

OptionSet& OptionSet::text(std::string name, std::string* target,
                           std::string value_name) {
  options_.push_back({std::move(name), true, std::move(value_name),
                      [target](const std::string&, const char* value) {
                        *target = value;
                      }});
  return *this;
}

OptionSet& OptionSet::choice(std::string name, std::string* target,
                             std::vector<std::string> allowed, bool* seen) {
  std::string rendered;
  for (std::size_t i = 0; i < allowed.size(); ++i) {
    if (i) rendered += '|';
    rendered += allowed[i];
  }
  options_.push_back(
      {std::move(name), true, rendered,
       [target, seen, allowed = std::move(allowed), rendered](
           const std::string& flag, const char* value) {
         for (const std::string& a : allowed) {
           if (a == value) {
             *target = value;
             if (seen != nullptr) *seen = true;
             return;
           }
         }
         throw Error(ErrorCategory::kUsage,
                     "flag " + flag + ": unknown value '" + value +
                         "' (expected " + rendered + ")");
       }});
  return *this;
}

void OptionSet::parse(int argc, char** argv, int first) const {
  FlagParser flags(argc, argv, first);
  while (flags.next()) {
    const Option* match = nullptr;
    for (const Option& o : options_) {
      if (o.name == flags.flag()) {
        match = &o;
        break;
      }
    }
    if (match == nullptr) flags.unknown();
    match->apply(flags.flag(), match->takes_value ? flags.value() : nullptr);
  }
}

std::string OptionSet::usage() const {
  std::string out;
  for (const Option& o : options_) {
    if (!out.empty()) out += ' ';
    out += '[';
    out += o.name;
    if (o.takes_value) {
      out += ' ';
      // Choices render their literal alternatives; plain values get <name>.
      if (o.value_name.find('|') != std::string::npos) {
        out += o.value_name;
      } else {
        out += '<' + o.value_name + '>';
      }
    }
    out += ']';
  }
  return out;
}

void CommonOptions::declare(OptionSet& opts) {
  opts.integer("-r", &repeats, 1, 1000000, "repeats");
  opts.flag("--validate", &validate);
  opts.text("--json-metrics", &json_metrics, "path");
  opts.choice("--load", &load_mode, {"mmap", "copy"});
  opts.integer("--serve", &serve, 0, 1000000, "reopens");
  opts.text("--shard-mb", &shard_mb, "mb|auto");
  opts.integer("--mem-limit-mb", &mem_limit_mb, 1,
               static_cast<long long>(internal::kMaxMemLimitMb), "mb");
}

}  // namespace pasgal::cli
