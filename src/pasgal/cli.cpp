#include "pasgal/cli.h"

#include <cerrno>
#include <cstdlib>

namespace pasgal::cli {

long long parse_int(const std::string& text, const std::string& what,
                    long long min_value, long long max_value,
                    ErrorCategory category) {
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size()) {
    throw Error(category, what + ": '" + text + "' is not an integer");
  }
  if (errno == ERANGE || value < min_value || value > max_value) {
    throw Error(category, what + ": " + text + " is out of range [" +
                              std::to_string(min_value) + ", " +
                              std::to_string(max_value) + "]");
  }
  return value;
}

long long parse_flag_int(const std::string& flag, const char* value,
                         long long min_value, long long max_value) {
  return parse_int(value, "flag " + flag, min_value, max_value,
                   ErrorCategory::kUsage);
}

long long Spec::required(std::size_t i, const char* what, long long min_value,
                         long long max_value) const {
  if (fields.size() < i || fields[i - 1].empty()) {
    throw Error(ErrorCategory::kUsage,
                "spec '" + text + "': missing field <" + what + ">");
  }
  return parse_int(fields[i - 1],
                   "spec '" + text + "' field <" + std::string(what) + ">",
                   min_value, max_value, ErrorCategory::kUsage);
}

long long Spec::optional(std::size_t i, const char* what, long long min_value,
                         long long max_value, long long fallback) const {
  if (fields.size() < i) return fallback;
  return parse_int(fields[i - 1],
                   "spec '" + text + "' field <" + std::string(what) + ">",
                   min_value, max_value, ErrorCategory::kUsage);
}

void Spec::expect_at_most(std::size_t count) const {
  if (fields.size() > count) {
    throw Error(ErrorCategory::kUsage, "spec '" + text +
                                           "': unexpected extra field '" +
                                           fields[count] + "'");
  }
}

Spec split_spec(const std::string& spec) {
  Spec out;
  out.text = spec;
  std::size_t start = 0;
  bool first = true;
  while (start <= spec.size()) {
    std::size_t colon = spec.find(':', start);
    if (colon == std::string::npos) colon = spec.size();
    std::string part = spec.substr(start, colon - start);
    if (first) {
      out.kind = std::move(part);
      first = false;
    } else {
      out.fields.push_back(std::move(part));
    }
    start = colon + 1;
  }
  return out;
}

OptionSet& OptionSet::flag(std::string name, bool* target,
                           std::string value_name) {
  options_.push_back({std::move(name), false, std::move(value_name),
                      [target](const std::string&, const char*) {
                        *target = true;
                      }});
  return *this;
}

OptionSet& OptionSet::add_integer(std::string name, long long min_value,
                                  long long max_value, std::string value_name,
                                  std::function<void(long long)> set) {
  options_.push_back(
      {std::move(name), true, std::move(value_name),
       [min_value, max_value, set = std::move(set)](const std::string& flag,
                                                    const char* value) {
         set(parse_flag_int(flag, value, min_value, max_value));
       }});
  return *this;
}

OptionSet& OptionSet::text(std::string name, std::string* target,
                           std::string value_name) {
  options_.push_back({std::move(name), true, std::move(value_name),
                      [target](const std::string&, const char* value) {
                        *target = value;
                      }});
  return *this;
}

OptionSet& OptionSet::choice(std::string name, std::string* target,
                             std::vector<std::string> allowed) {
  std::string rendered;
  for (std::size_t i = 0; i < allowed.size(); ++i) {
    if (i) rendered += '|';
    rendered += allowed[i];
  }
  options_.push_back(
      {std::move(name), true, rendered,
       [target, allowed = std::move(allowed), rendered](
           const std::string& flag, const char* value) {
         for (const std::string& a : allowed) {
           if (a == value) {
             *target = value;
             return;
           }
         }
         throw Error(ErrorCategory::kUsage,
                     "flag " + flag + ": unknown value '" + value +
                         "' (expected " + rendered + ")");
       }});
  return *this;
}

void OptionSet::parse(int argc, char** argv, int first) const {
  FlagParser flags(argc, argv, first);
  while (flags.next()) {
    const Option* match = nullptr;
    for (const Option& o : options_) {
      if (o.name == flags.flag()) {
        match = &o;
        break;
      }
    }
    if (match == nullptr) flags.unknown();
    match->apply(flags.flag(), match->takes_value ? flags.value() : nullptr);
  }
}

std::string OptionSet::usage() const {
  std::string out;
  for (const Option& o : options_) {
    if (!out.empty()) out += ' ';
    out += '[';
    out += o.name;
    if (o.takes_value) {
      out += ' ';
      // Choices render their literal alternatives; plain values get <name>.
      if (o.value_name.find('|') != std::string::npos) {
        out += o.value_name;
      } else {
        out += '<' + o.value_name + '>';
      }
    }
    out += ']';
  }
  return out;
}

void CommonOptions::declare(OptionSet& opts) {
  opts.integer("-r", &repeats, 1, 1000000, "repeats");
  opts.flag("--validate", &validate);
  opts.text("--json-metrics", &json_metrics, "path");
  opts.choice("--load", &load_mode, {"mmap", "copy"});
  opts.integer("--serve", &serve, 0, 1000000, "reopens");
}

}  // namespace pasgal::cli
