// Per-run instrumentation: rounds (global synchronizations), edges scanned,
// vertices visited, frontier sizes — the quantities the paper's argument is
// about. Counters are per-worker and cache-line padded so instrumentation
// does not serialize the algorithms.
//
// Also provides the calibrated cost model used by the benchmark harness to
// project speedup-vs-cores curves on hardware with fewer cores than the
// paper's 96-core testbed (see DESIGN.md §2 and §4).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "parlay/scheduler.h"

namespace pasgal {

class RunStats {
 public:
  RunStats();

  void reset();

  // Hot-path counters (callable from any worker).
  void add_edges(std::uint64_t k) { slot().edges += k; }
  void add_visits(std::uint64_t k) { slot().visits += k; }

  // Called once per frontier round by the round master.
  void end_round(std::uint64_t frontier_size);

  std::uint64_t edges_scanned() const;
  std::uint64_t vertices_visited() const;
  std::uint64_t rounds() const { return static_cast<std::uint64_t>(frontier_sizes_.size()); }
  const std::vector<std::uint64_t>& frontier_sizes() const { return frontier_sizes_; }

  std::uint64_t max_frontier() const;

 private:
  struct alignas(64) Counters {
    std::uint64_t edges = 0;
    std::uint64_t visits = 0;
  };
  Counters& slot() { return counters_[static_cast<std::size_t>(worker_id())]; }

  std::vector<Counters> counters_;
  std::vector<std::uint64_t> frontier_sizes_;
};

// Cost model for projecting runtimes to P processors (DESIGN.md §4):
//
//   T_P = W * c_work / min(P, parallelism) + R * c_sync(P) + seq * c_work
//
// where W = edges scanned + vertices visited, R = rounds, and `parallelism`
// limits useful cores by the average frontier size (a round with 3 frontier
// vertices cannot use 96 cores). c_sync grows logarithmically with P,
// modelling tree-based fork/join distribution cost.
struct CostModel {
  double c_work = 1.0;       // ns per edge operation (calibrated)
  double c_sync = 4000.0;    // ns per global synchronization at P=2
  double seq_fraction = 0.0; // fraction of W that is inherently sequential

  double projected_time_ns(std::uint64_t work, std::uint64_t rounds,
                           double avg_parallelism, int P) const;

  // Speedup of (work, rounds) at P cores over a given sequential time.
  double projected_speedup(std::uint64_t work, std::uint64_t rounds,
                           double avg_parallelism, int P,
                           double seq_time_ns) const;
};

// Calibrates c_work from a measured single-thread run.
CostModel calibrate(double measured_seq_ns, std::uint64_t seq_work);

}  // namespace pasgal
