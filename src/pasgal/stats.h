// Legacy shim: `RunStats` is now an alias for the full telemetry recorder
// (pasgal/telemetry.h), which keeps the original interface — add_edges,
// add_visits, end_round, rounds(), frontier_sizes(), max_frontier() — so
// existing call sites and tests compile unchanged while gaining round traces,
// depth histograms, and scheduler counters for free.
//
// Also provides the calibrated cost model used by the benchmark harness to
// project speedup-vs-cores curves on hardware with fewer cores than the
// paper's 96-core testbed (see DESIGN.md §2 and §4).
#pragma once

#include <cstdint>

#include "pasgal/telemetry.h"

namespace pasgal {

using RunStats = Tracer;

// Cost model for projecting runtimes to P processors (DESIGN.md §4):
//
//   T_P = W * c_work / min(P, parallelism) + R * c_sync(P) + seq * c_work
//
// where W = edges scanned + vertices visited, R = rounds, and `parallelism`
// limits useful cores by the average frontier size (a round with 3 frontier
// vertices cannot use 96 cores). c_sync grows logarithmically with P,
// modelling tree-based fork/join distribution cost.
struct CostModel {
  double c_work = 1.0;       // ns per edge operation (calibrated)
  double c_sync = 4000.0;    // ns per global synchronization at P=2
  double seq_fraction = 0.0; // fraction of W that is inherently sequential

  double projected_time_ns(std::uint64_t work, std::uint64_t rounds,
                           double avg_parallelism, int P) const;

  // Speedup of (work, rounds) at P cores over a given sequential time.
  double projected_speedup(std::uint64_t work, std::uint64_t rounds,
                           double avg_parallelism, int P,
                           double seq_time_ns) const;
};

// Calibrates c_work from a measured single-thread run.
CostModel calibrate(double measured_seq_ns, std::uint64_t seq_work);

}  // namespace pasgal
