#include "pasgal/stats.h"

#include <algorithm>
#include <cmath>

namespace pasgal {

RunStats::RunStats() : counters_(static_cast<std::size_t>(num_workers())) {}

void RunStats::reset() {
  std::fill(counters_.begin(), counters_.end(), Counters{});
  frontier_sizes_.clear();
}

void RunStats::end_round(std::uint64_t frontier_size) {
  frontier_sizes_.push_back(frontier_size);
}

std::uint64_t RunStats::edges_scanned() const {
  std::uint64_t total = 0;
  for (const Counters& c : counters_) total += c.edges;
  return total;
}

std::uint64_t RunStats::vertices_visited() const {
  std::uint64_t total = 0;
  for (const Counters& c : counters_) total += c.visits;
  return total;
}

std::uint64_t RunStats::max_frontier() const {
  std::uint64_t best = 0;
  for (std::uint64_t f : frontier_sizes_) best = std::max(best, f);
  return best;
}

double CostModel::projected_time_ns(std::uint64_t work, std::uint64_t rounds,
                                    double avg_parallelism, int P) const {
  double usable = std::min<double>(P, std::max(1.0, avg_parallelism));
  double compute = static_cast<double>(work) * c_work * (1.0 - seq_fraction) / usable;
  double sequential = static_cast<double>(work) * c_work * seq_fraction;
  double sync = P <= 1 ? 0.0
                       : static_cast<double>(rounds) * c_sync *
                             (1.0 + std::log2(static_cast<double>(P)));
  return compute + sequential + sync;
}

double CostModel::projected_speedup(std::uint64_t work, std::uint64_t rounds,
                                    double avg_parallelism, int P,
                                    double seq_time_ns) const {
  return seq_time_ns / projected_time_ns(work, rounds, avg_parallelism, P);
}

CostModel calibrate(double measured_seq_ns, std::uint64_t seq_work) {
  CostModel model;
  if (seq_work > 0) {
    model.c_work = measured_seq_ns / static_cast<double>(seq_work);
  }
  return model;
}

}  // namespace pasgal
