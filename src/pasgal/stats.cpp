#include "pasgal/stats.h"

#include <algorithm>
#include <cmath>

namespace pasgal {

double CostModel::projected_time_ns(std::uint64_t work, std::uint64_t rounds,
                                    double avg_parallelism, int P) const {
  double usable = std::min<double>(P, std::max(1.0, avg_parallelism));
  double compute = static_cast<double>(work) * c_work * (1.0 - seq_fraction) / usable;
  double sequential = static_cast<double>(work) * c_work * seq_fraction;
  double sync = P <= 1 ? 0.0
                       : static_cast<double>(rounds) * c_sync *
                             (1.0 + std::log2(static_cast<double>(P)));
  return compute + sequential + sync;
}

double CostModel::projected_speedup(std::uint64_t work, std::uint64_t rounds,
                                    double avg_parallelism, int P,
                                    double seq_time_ns) const {
  return seq_time_ns / projected_time_ns(work, rounds, avg_parallelism, P);
}

CostModel calibrate(double measured_seq_ns, std::uint64_t seq_work) {
  CostModel model;
  if (seq_work > 0) {
    model.c_work = measured_seq_ns / static_cast<double>(seq_work);
  }
  return model;
}

}  // namespace pasgal
