// Fault injection for exercising degradation paths.
//
// A robustness claim that is never executed is a guess. Every "this error
// maps to a typed response" path in the serving stack — mmap failure, v2
// decode corruption, allocation rejection, a client dying mid-write — is
// reachable on demand through a failpoint:
//
//   PASGAL_FAULT=<site>[:<nth>]
//
// arms exactly one site; its nth hit (1-based, default 1) fails with the
// site's natural typed error, then the failpoint disarms itself. Sites:
//
//   mmap        MappedFile::open            -> kIo
//   decode      compressed-targets decode   -> kFormat
//   alloc       GraphStorage::check_footprint (the single guard point all
//               untrusted-size allocations pass through) -> kResource
//   sock_write  server response write       -> treated as a dead client
//
// Cost discipline: when nothing is armed, `should_fail` is one relaxed
// atomic load. The environment is parsed once, lazily; tests arm sites
// programmatically via arm()/disarm() without env-var games.
#pragma once

#include <string>

namespace pasgal::fault {

// True exactly once: on the armed site's nth hit. Unarmed sites (and all
// sites when nothing is armed) always return false.
bool should_fail(const char* site);

// Programmatic arming, overriding any PASGAL_FAULT env setting:
// "<site>[:<nth>]". Resets the hit counter. Throws kUsage on a malformed
// spec or nth < 1.
void arm(const std::string& spec);

// Disarms everything (also clears an env-armed failpoint for this process).
void disarm();

// The armed "<site>:<nth>" spec, or "" when disarmed. Diagnostics/tests.
std::string armed_spec();

}  // namespace pasgal::fault
