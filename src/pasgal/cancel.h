// Cooperative cancellation for long-running algorithm invocations.
//
// A serving process cannot afford a query that runs forever: the scheduler
// is shared, so one adversarial graph shape (a 10^7-vertex chain under a
// level-synchronous algorithm) would starve every other request. Preemption
// is off the table — workers hold no locks but share scratch arrays — so
// cancellation is cooperative: the round master checks a token at every
// global synchronization (the edge_map round boundary, the stepping
// framework's step boundary) and unwinds with a typed kTimeout Error. All
// run state is function-local, so the unwind is clean and the worker pool
// survives to run the next query.
//
// A token is armed with either an explicit cancel() (another thread, a
// signal-driven drain) or a wall-clock deadline; `expired()` is a relaxed
// atomic load plus, when a deadline is set, one steady_clock read — cheap
// enough for per-round use, far too coarse for per-edge use (by design:
// checking inside the parallel loops would put a clock read on the hot
// path and an exception on a worker thread).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "pasgal/error.h"

namespace pasgal {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Arms a deadline `ms` milliseconds from now (replacing any previous
  // deadline). A deadline of 0 ms is already expired — useful in tests.
  void set_deadline_ms(std::uint64_t ms) {
    auto at = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    deadline_ns_.store(at.time_since_epoch().count(),
                       std::memory_order_release);
  }

  // Explicit cancellation (drain paths, tests). Idempotent.
  void cancel() { cancelled_.store(true, std::memory_order_release); }

  // True once cancelled or past the deadline. Latches: after the deadline
  // passes once, later calls are a single atomic load.
  bool expired() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    std::int64_t at = deadline_ns_.load(std::memory_order_acquire);
    if (at == 0) return false;
    if (std::chrono::steady_clock::now().time_since_epoch().count() < at) {
      return false;
    }
    cancelled_.store(true, std::memory_order_release);
    return true;
  }

  // Round-boundary check: throws the typed kTimeout Error callers map to a
  // typed response / exit code 5. `where` names the boundary for the
  // diagnostic. Must be called from the round master (the thread driving
  // the outer loop), never from inside a parallel_for.
  void check(const char* where) const {
    if (expired()) {
      throw Error(ErrorCategory::kTimeout,
                  std::string("deadline exceeded (cancelled at ") + where +
                      ")");
    }
  }

 private:
  // Latched by const expired() once the deadline passes, hence mutable.
  mutable std::atomic<bool> cancelled_{false};
  // steady_clock time-since-epoch in ns; 0 = no deadline armed.
  std::atomic<std::int64_t> deadline_ns_{0};
};

}  // namespace pasgal
