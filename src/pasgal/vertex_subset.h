// VertexSubset: a frontier in either sparse (vertex list) or dense
// (byte mask) representation, mirroring the Ligra/GBBS abstraction the
// baselines in the paper are built on.
//
// Invariant: the sparse vertex list is always sorted ascending and
// duplicate-free (hash-bag extractions are multisets, so sparse()
// deduplicates; size() and out_degree_sum() count each member once in
// either representation). Frontiers
// coming out of edge_map are nearly sorted already (they are filters over
// per-vertex sorted runs), so the is_sorted guard below makes maintaining
// the invariant close to free while `contains` gets to binary-search
// instead of scanning the whole frontier.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "graphs/graph.h"
#include "parlay/primitives.h"

namespace pasgal {

class VertexSubset {
 public:
  static VertexSubset sparse(std::size_t n, std::vector<VertexId> vertices) {
    VertexSubset s;
    s.n_ = n;
    s.sparse_ = std::move(vertices);
    if (!std::is_sorted(s.sparse_.begin(), s.sparse_.end())) {
      std::sort(s.sparse_.begin(), s.sparse_.end());
    }
    // The list is sorted, so one compare on the maximum validates every id.
    // Out-of-universe members would otherwise ride the sorted invariant into
    // to_dense()'s unchecked mask indexing.
    if (!s.sparse_.empty() && s.sparse_.back() >= n) {
      throw Error(ErrorCategory::kValidation,
                  "sparse frontier contains vertex " +
                      std::to_string(s.sparse_.back()) +
                      ", out of range for a universe of " + std::to_string(n));
    }
    // Hash-bag extractions are multisets (a vertex can be inserted by
    // several neighbors in one round); a frontier is a set. Without this,
    // size() and out_degree_sum() overstate and the duplicates skew
    // edge_map's sparse/dense direction decision.
    s.sparse_.erase(std::unique(s.sparse_.begin(), s.sparse_.end()),
                    s.sparse_.end());
    s.is_dense_ = false;
    return s;
  }

  static VertexSubset dense(std::vector<std::uint8_t> mask) {
    VertexSubset s;
    s.n_ = mask.size();
    s.dense_ = std::move(mask);
    s.is_dense_ = true;
    s.dense_count_ = count_if_index(
        s.n_, [&](std::size_t i) { return s.dense_[i] != 0; });
    return s;
  }

  // Trusted-count overload for producers that already know how many mask
  // slots they set (edge_map's dense phase counts activations as it writes
  // them) — skips the O(n) parallel recount above. `count` must equal the
  // number of nonzero mask bytes; size(), to_sparse(), and the direction
  // heuristic all consume it.
  static VertexSubset dense(std::vector<std::uint8_t> mask,
                            std::size_t count) {
    VertexSubset s;
    s.n_ = mask.size();
    s.dense_ = std::move(mask);
    s.is_dense_ = true;
    s.dense_count_ = count;
    return s;
  }

  static VertexSubset single(std::size_t n, VertexId v) {
    return sparse(n, {v});
  }

  static VertexSubset empty(std::size_t n) { return sparse(n, {}); }

  std::size_t universe_size() const { return n_; }
  bool is_dense() const { return is_dense_; }
  std::size_t size() const { return is_dense_ ? dense_count_ : sparse_.size(); }
  bool empty() const { return size() == 0; }

  // Sorted ascending (class invariant; to_sparse packs by index, so the
  // dense->sparse conversion preserves it without a sort).
  const std::vector<VertexId>& sparse_vertices() const { return sparse_; }
  const std::vector<std::uint8_t>& dense_mask() const { return dense_; }

  bool contains(VertexId v) const {
    // Out-of-universe ids are simply absent. Without the bound, a graph
    // whose targets escaped validation (or a caller-supplied stray id, e.g.
    // kInvalidVertex) would index past the mask.
    if (v >= n_) return false;
    if (is_dense_) return dense_[v] != 0;
    return std::binary_search(sparse_.begin(), sparse_.end(), v);
  }

  // Conversions (parallel).
  void to_dense() {
    if (is_dense_) return;
    dense_.assign(n_, 0);
    parallel_for(0, sparse_.size(), [&](std::size_t i) { dense_[sparse_[i]] = 1; });
    dense_count_ = sparse_.size();  // exact: sparse_ is duplicate-free
    sparse_.clear();
    is_dense_ = true;
  }

  void to_sparse() {
    if (!is_dense_) return;
    sparse_ = pack_indexed<VertexId>(
        n_, [&](std::size_t i) { return dense_[i] != 0; },
        [&](std::size_t i) { return static_cast<VertexId>(i); });
    dense_.clear();
    is_dense_ = false;
  }

  // Total out-degree of the member vertices — the classic density signal.
  EdgeId out_degree_sum(const Graph& g) const {
    if (is_dense_) {
      return reduce_indexed<EdgeId>(
          n_, 0, std::plus<EdgeId>{}, [&](std::size_t v) {
            return dense_[v] ? g.out_degree(static_cast<VertexId>(v)) : 0;
          });
    }
    return reduce_indexed<EdgeId>(
        sparse_.size(), 0, std::plus<EdgeId>{},
        [&](std::size_t i) { return g.out_degree(sparse_[i]); });
  }

 private:
  std::size_t n_ = 0;
  bool is_dense_ = false;
  std::vector<VertexId> sparse_;
  std::vector<std::uint8_t> dense_;
  std::size_t dense_count_ = 0;
};

}  // namespace pasgal
