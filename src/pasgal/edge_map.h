// edge_map with direction optimization (Beamer et al., SC'12), as used by the
// GBBS/GAPBS-style baselines and by PASGAL's dense phases.
//
//   update(u, v)       — try to activate v from u (must be atomic; returns
//                        true iff this call activated v)
//   update_seq(u, v)   — same but called without concurrency on v (dense
//                        backward mode scans v's in-edges from one task)
//   cond(v)            — is v still eligible for activation
//
// Sparse ("push") mode maps over the frontier's out-edges and collects newly
// activated vertices. Dense ("pull") mode iterates all eligible vertices and
// scans their in-neighbours. The mode is chosen by the frontier's size +
// out-degree sum against m / kDenseThresholdDen.
//
// Both directions are also exposed as named entry points (edge_map_sparse /
// edge_map_dense) for callers that make their own direction decision — the
// bit-parallel ms_bfs pushes sparse rounds through a hash bag but reuses the
// dense pull here with `pull_exhaustive` set.
#pragma once

#include <cstdint>
#include <vector>

#include "graphs/graph.h"
#include "parlay/primitives.h"
#include "pasgal/cancel.h"
#include "pasgal/stats.h"
#include "pasgal/vertex_subset.h"

namespace pasgal {

struct EdgeMapOptions {
  bool allow_dense = true;
  // Dense when (|F| + outdeg(F)) > m / den  (GAPBS uses m/20).
  EdgeId dense_threshold_den = 20;
  // Cooperative cancellation, checked once at edge_map entry — the round
  // boundary — from the round master. Null disables the check.
  const CancelToken* cancel = nullptr;
  // Dense pull normally stops scanning a vertex's in-edges at the first
  // activation — correct when one hit fully decides the vertex (single-
  // source BFS: the level is the level). Mask-accumulating traversals
  // (ms_bfs: a vertex gathers source bits from *every* in-neighbour in the
  // frontier, and stopping early would assign later arrivals a wrong, larger
  // level) must keep scanning until cond() reports the vertex saturated.
  bool pull_exhaustive = false;
};

// Dense ("pull") direction: iterate all cond()-eligible vertices, scan their
// in-neighbours (gt supplies in-edges; pass g itself for symmetric graphs).
template <typename UpdateSeq, typename Cond>
VertexSubset edge_map_dense(const Graph& g, const Graph& gt,
                            VertexSubset& frontier, UpdateSeq update_seq,
                            Cond cond, const EdgeMapOptions& opt = {},
                            RunStats* stats = nullptr) {
  // Unchecked indexing below (neighbors(), in_frontier[u]) requires in-range
  // targets; un-deep-validated mmap storages are checked once here (a
  // single atomic load afterwards).
  g.ensure_validated();
  gt.ensure_validated();
  if (opt.cancel != nullptr) opt.cancel->check("edge_map round boundary");
  std::size_t n = g.num_vertices();
  if (stats) stats->set_round_kind(RoundKind::kDense);
  frontier.to_dense();
  const auto& in_frontier = frontier.dense_mask();
  std::vector<std::uint8_t> next(n, 0);
  // Activations are counted as they happen, so the resulting subset's
  // cardinality is known without VertexSubset::dense's O(n) recount.
  std::size_t activated = reduce_indexed<std::size_t>(
      n, 0, std::plus<std::size_t>{}, [&](std::size_t vi) -> std::size_t {
        VertexId v = static_cast<VertexId>(vi);
        if (!cond(v)) return 0;
        std::uint64_t scanned = 0;
        std::size_t hit = 0;
        for (VertexId u : gt.neighbors(v)) {
          ++scanned;
          if (in_frontier[u] && update_seq(u, v)) {
            next[vi] = 1;
            hit = 1;
            if (!opt.pull_exhaustive) break;  // activated; one hit decides v
          }
          if (!cond(v)) break;  // saturated; nothing more to gather
        }
        if (stats) stats->add_edges(scanned);
        return hit;
      });
  if (stats) stats->add_visits(n);
  return VertexSubset::dense(std::move(next), activated);
}

// Sparse ("push") direction: map over the frontier's out-edges, collect
// newly activated vertices via a two-phase pack.
template <typename Update, typename Cond>
VertexSubset edge_map_sparse(const Graph& g, VertexSubset& frontier,
                             Update update, Cond cond,
                             const EdgeMapOptions& opt = {},
                             RunStats* stats = nullptr) {
  g.ensure_validated();
  if (opt.cancel != nullptr) opt.cancel->check("edge_map round boundary");
  std::size_t n = g.num_vertices();
  if (stats) stats->set_round_kind(RoundKind::kSparse);
  frontier.to_sparse();
  const auto& verts = frontier.sparse_vertices();
  // Two-phase pack: count activations per frontier vertex, then fill.
  std::size_t k = verts.size();
  std::vector<EdgeId> offsets(k + 1);
  offsets[k] = scan_indexed<EdgeId>(
      k, [&](std::size_t i) { return g.out_degree(verts[i]); },
      [&](std::size_t i, EdgeId v) { offsets[i] = v; });
  std::vector<VertexId> out(offsets[k], kInvalidVertex);
  parallel_for(0, k, [&](std::size_t i) {
    VertexId u = verts[i];
    EdgeId base = offsets[i];
    std::uint64_t scanned = 0;
    EdgeId slot = 0;
    for (VertexId v : g.neighbors(u)) {
      ++scanned;
      if (cond(v) && update(u, v)) out[base + slot++] = v;
    }
    if (stats) {
      stats->add_edges(scanned);
      stats->add_visits(1);
    }
  });
  auto next = filter(std::span<const VertexId>(out),
                     [](VertexId v) { return v != kInvalidVertex; });
  return VertexSubset::sparse(n, std::move(next));
}

// Direction-optimizing wrapper: `g` supplies out-edges (push); `gt` supplies
// in-edges for the pull direction (pass g itself for symmetric graphs).
template <typename Update, typename UpdateSeq, typename Cond>
VertexSubset edge_map(const Graph& g, const Graph& gt, VertexSubset& frontier,
                      Update update, UpdateSeq update_seq, Cond cond,
                      const EdgeMapOptions& opt = {}, RunStats* stats = nullptr) {
  g.ensure_validated();
  EdgeId frontier_work = frontier.out_degree_sum(g) + frontier.size();
  bool go_dense = opt.allow_dense &&
                  frontier_work > g.num_edges() / opt.dense_threshold_den;
  if (go_dense) {
    return edge_map_dense(g, gt, frontier, update_seq, cond, opt, stats);
  }
  return edge_map_sparse(g, frontier, update, cond, opt, stats);
}

// Convenience overload when the same update works in both modes.
template <typename Update, typename Cond>
VertexSubset edge_map(const Graph& g, const Graph& gt, VertexSubset& frontier,
                      Update update, Cond cond, const EdgeMapOptions& opt = {},
                      RunStats* stats = nullptr) {
  return edge_map(g, gt, frontier, update, update, cond, opt, stats);
}

}  // namespace pasgal
