// edge_map with direction optimization (Beamer et al., SC'12), as used by the
// GBBS/GAPBS-style baselines and by PASGAL's dense phases.
//
//   update(u, v)       — try to activate v from u (must be atomic; returns
//                        true iff this call activated v)
//   update_seq(u, v)   — same but called without concurrency on v (dense
//                        backward mode scans v's in-edges from one task)
//   cond(v)            — is v still eligible for activation
//
// Sparse ("push") mode maps over the frontier's out-edges and collects newly
// activated vertices. Dense ("pull") mode iterates all eligible vertices and
// scans their in-neighbours. The mode is chosen by the frontier's size +
// out-degree sum against m / kDenseThresholdDen.
//
// Both directions are also exposed as named entry points (edge_map_sparse /
// edge_map_dense) for callers that make their own direction decision — the
// bit-parallel ms_bfs pushes sparse rounds through a hash bag but reuses the
// dense pull here with `pull_exhaustive` set.
#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "graphs/delta.h"
#include "graphs/graph.h"
#include "parlay/primitives.h"
#include "pasgal/cancel.h"
#include "pasgal/stats.h"
#include "pasgal/vertex_subset.h"

namespace pasgal {

namespace internal {

// Updates may optionally take the edge id as a third argument (weighted
// traversals index the weights array with it). In sparse/push mode `e` is
// the edge's global id in g; in dense/pull mode it is the in-edge's id in gt.
template <typename F>
inline bool invoke_update(F& f, VertexId u, VertexId v, EdgeId e) {
  if constexpr (std::is_invocable_v<F&, VertexId, VertexId, EdgeId>) {
    return f(u, v, e);
  } else {
    return f(u, v);
  }
}

}  // namespace internal

struct EdgeMapOptions {
  bool allow_dense = true;
  // Dense when (|F| + outdeg(F)) > m / den  (GAPBS uses m/20).
  EdgeId dense_threshold_den = 20;
  // Cooperative cancellation, checked once at edge_map entry — the round
  // boundary — from the round master. Null disables the check.
  const CancelToken* cancel = nullptr;
  // Dense pull normally stops scanning a vertex's in-edges at the first
  // activation — correct when one hit fully decides the vertex (single-
  // source BFS: the level is the level). Mask-accumulating traversals
  // (ms_bfs: a vertex gathers source bits from *every* in-neighbour in the
  // frontier, and stopping early would assign later arrivals a wrong, larger
  // level) must keep scanning until cond() reports the vertex saturated.
  bool pull_exhaustive = false;
};

// Dense ("pull") direction: iterate all cond()-eligible vertices, scan their
// in-neighbours (gt supplies in-edges; pass g itself for symmetric graphs).
template <typename UpdateSeq, typename Cond>
VertexSubset edge_map_dense(const Graph& g, const Graph& gt,
                            VertexSubset& frontier, UpdateSeq update_seq,
                            Cond cond, const EdgeMapOptions& opt = {},
                            RunStats* stats = nullptr) {
  // Unchecked indexing below (neighbors(), in_frontier[u]) requires in-range
  // targets; un-deep-validated mmap storages are checked once here (a
  // single atomic load afterwards).
  g.ensure_validated();
  gt.ensure_validated();
  if (opt.cancel != nullptr) opt.cancel->check("edge_map round boundary");
  std::size_t n = g.num_vertices();
  if (stats) stats->set_round_kind(RoundKind::kDense);
  frontier.to_dense();
  const auto& in_frontier = frontier.dense_mask();
  std::vector<std::uint8_t> next(n, 0);
  // Update overlay, fetched once per round: the scanned graph's own snapshot
  // (gt carries the flipped, in-edge side — see graphs/delta.h). Sharded
  // opens never carry one (apply_updates rejects them), so the window path
  // below stays overlay-free.
  std::shared_ptr<const DeltaSnapshot> delta_hold =
      gt.storage() != nullptr ? gt.storage()->delta_snapshot() : nullptr;
  const DeltaSnapshot* delta = delta_hold.get();
  // One destination range, in-edge targets supplied by the caller (the whole
  // mapped array in-core, the active shard's window when sharded).
  // Activations are counted as they happen, so the resulting subset's
  // cardinality is known without VertexSubset::dense's O(n) recount — and
  // counted per range, so per-shard sweeps sum to the identical total.
  auto scan_range = [&](std::size_t v_begin, std::size_t v_end,
                        const VertexId* tgt, EdgeId e_base) -> std::size_t {
    return reduce_indexed<std::size_t>(
        v_end - v_begin, 0, std::plus<std::size_t>{},
        [&](std::size_t rel) -> std::size_t {
          VertexId v = static_cast<VertexId>(v_begin + rel);
          if (!cond(v)) return 0;
          std::uint64_t scanned = 0;
          std::size_t hit = 0;
          auto visit = [&](VertexId u, EdgeId e) -> bool {
            ++scanned;
            if (in_frontier[u] &&
                internal::invoke_update(update_seq, u, v, e)) {
              next[v] = 1;
              hit = 1;
              if (!opt.pull_exhaustive) return false;  // one hit decides v
            }
            return cond(v);  // false: saturated, nothing more to gather
          };
          if (delta != nullptr && delta->touches(v)) {
            // Merged scan visits effective in-neighbours in the same
            // ascending order a rebuilt CSR stores them, so activation order
            // (and every downstream pack) matches a from-scratch rebuild.
            delta->scan_effective(v, tgt + (gt.edge_begin(v) - e_base),
                                  gt.edge_begin(v), gt.edge_end(v), visit);
          } else {
            EdgeId e_end = gt.edge_end(v);
            for (EdgeId e = gt.edge_begin(v); e < e_end; ++e) {
              if (!visit(tgt[e - e_base], e)) break;
            }
          }
          if (stats) stats->add_edges(scanned);
          return hit;
        });
  };
  std::size_t activated = 0;
  const auto& window =
      gt.storage() != nullptr ? gt.storage()->shard_window() : nullptr;
  if (window == nullptr) {
    activated = scan_range(0, n, gt.targets().data(), 0);
  } else {
    // Pull scans in-edges, so the sweep follows gt's shard plan: each shard
    // covers a contiguous destination range and its in-edge payload.
    const ShardPlan& plan = window->plan();
    for (std::size_t s = 0; s < plan.size(); ++s) {
      if (opt.cancel != nullptr) opt.cancel->check("shard sweep boundary");
      MappedWindow::ActiveShard shard = window->activate(s);
      activated += scan_range(plan[s].v_begin, plan[s].v_end, shard.targets,
                              shard.e_base);
    }
  }
  if (stats) stats->add_visits(n);
  return VertexSubset::dense(std::move(next), activated);
}

// Sparse ("push") direction: map over the frontier's out-edges, collect
// newly activated vertices via a two-phase pack.
template <typename Update, typename Cond>
VertexSubset edge_map_sparse(const Graph& g, VertexSubset& frontier,
                             Update update, Cond cond,
                             const EdgeMapOptions& opt = {},
                             RunStats* stats = nullptr) {
  g.ensure_validated();
  if (opt.cancel != nullptr) opt.cancel->check("edge_map round boundary");
  std::size_t n = g.num_vertices();
  if (stats) stats->set_round_kind(RoundKind::kSparse);
  frontier.to_sparse();
  const auto& verts = frontier.sparse_vertices();
  // Update overlay, fetched once per round (push walks out-edges, so this is
  // the forward snapshot). Sharded opens never carry one.
  std::shared_ptr<const DeltaSnapshot> delta_hold =
      g.storage() != nullptr ? g.storage()->delta_snapshot() : nullptr;
  const DeltaSnapshot* delta = delta_hold.get();
  // Two-phase pack: count activations per frontier vertex, then fill. With
  // an overlay the scatter slots are sized by *effective* degree — exactly
  // the number of edges the merged scan visits.
  std::size_t k = verts.size();
  std::vector<EdgeId> offsets(k + 1);
  offsets[k] = scan_indexed<EdgeId>(
      k,
      [&](std::size_t i) {
        EdgeId deg = g.out_degree(verts[i]);
        return delta != nullptr ? delta->effective_degree(verts[i], deg) : deg;
      },
      [&](std::size_t i, EdgeId v) { offsets[i] = v; });
  // Process the frontier slice [lo, hi) with the given targets view, writing
  // activations at out[offsets[i] - out_base ..].
  auto push_slice = [&](std::size_t lo, std::size_t hi, const VertexId* tgt,
                        EdgeId e_base, VertexId* out, EdgeId out_base) {
    parallel_for(lo, hi, [&](std::size_t i) {
      VertexId u = verts[i];
      EdgeId base = offsets[i] - out_base;
      std::uint64_t scanned = 0;
      EdgeId slot = 0;
      auto try_push = [&](VertexId v, EdgeId e) -> bool {
        ++scanned;
        if (cond(v) && internal::invoke_update(update, u, v, e)) {
          out[base + slot++] = v;
        }
        return true;
      };
      if (delta != nullptr && delta->touches(u)) {
        delta->scan_effective(u, tgt + (g.edge_begin(u) - e_base),
                              g.edge_begin(u), g.edge_end(u), try_push);
      } else {
        EdgeId e_end = g.edge_end(u);
        for (EdgeId e = g.edge_begin(u); e < e_end; ++e) {
          try_push(tgt[e - e_base], e);
        }
      }
      if (stats) {
        stats->add_edges(scanned);
        stats->add_visits(1);
      }
    });
  };
  const auto& window =
      g.storage() != nullptr ? g.storage()->shard_window() : nullptr;
  if (window == nullptr) {
    std::vector<VertexId> out(offsets[k], kInvalidVertex);
    push_slice(0, k, g.targets().data(), 0, out.data(), 0);
    auto next = filter(std::span<const VertexId>(out),
                       [](VertexId v) { return v != kInvalidVertex; });
    return VertexSubset::sparse(n, std::move(next));
  }
  // Sharded push: the sparse list is sorted (VertexSubset invariant), so
  // the frontier partitions into contiguous per-shard slices found by
  // binary search; shards without frontier vertices are never activated.
  // Each slice gets its own scatter buffer — a slice's out-degree sum is
  // capped by its shard's edge count, so sparse-round scratch stays within
  // the window budget instead of scaling with the whole frontier's
  // out-degree. Slices are packed in frontier order, so the concatenated
  // activation list is identical to the one the single-buffer path packs.
  const ShardPlan& plan = window->plan();
  std::vector<VertexId> next;
  std::vector<VertexId> slice_out;
  std::size_t i = 0;
  while (i < k) {
    std::size_t s = plan.shard_of(verts[i]);
    std::size_t j =
        static_cast<std::size_t>(std::lower_bound(verts.begin() +
                                                      static_cast<std::ptrdiff_t>(i),
                                                  verts.end(),
                                                  plan[s].v_end) -
                                 verts.begin());
    if (opt.cancel != nullptr) opt.cancel->check("shard sweep boundary");
    MappedWindow::ActiveShard shard = window->activate(s);
    slice_out.assign(static_cast<std::size_t>(offsets[j] - offsets[i]),
                     kInvalidVertex);
    push_slice(i, j, shard.targets, shard.e_base, slice_out.data(),
               offsets[i]);
    auto kept = filter(std::span<const VertexId>(slice_out),
                       [](VertexId v) { return v != kInvalidVertex; });
    next.insert(next.end(), kept.begin(), kept.end());
    i = j;
  }
  return VertexSubset::sparse(n, std::move(next));
}

// Direction-optimizing wrapper: `g` supplies out-edges (push); `gt` supplies
// in-edges for the pull direction (pass g itself for symmetric graphs).
template <typename Update, typename UpdateSeq, typename Cond>
VertexSubset edge_map(const Graph& g, const Graph& gt, VertexSubset& frontier,
                      Update update, UpdateSeq update_seq, Cond cond,
                      const EdgeMapOptions& opt = {}, RunStats* stats = nullptr) {
  g.ensure_validated();
  EdgeId frontier_work = frontier.out_degree_sum(g) + frontier.size();
  bool go_dense = opt.allow_dense &&
                  frontier_work > g.num_edges() / opt.dense_threshold_den;
  if (go_dense) {
    return edge_map_dense(g, gt, frontier, update_seq, cond, opt, stats);
  }
  return edge_map_sparse(g, frontier, update, cond, opt, stats);
}

// Convenience overload when the same update works in both modes.
template <typename Update, typename Cond>
VertexSubset edge_map(const Graph& g, const Graph& gt, VertexSubset& frontier,
                      Update update, Cond cond, const EdgeMapOptions& opt = {},
                      RunStats* stats = nullptr) {
  return edge_map(g, gt, frontier, update, update, cond, opt, stats);
}

}  // namespace pasgal
