// Vertical granularity control (VGC) — the paper's core technique (§2.1).
//
// Classic (horizontal) granularity control batches *sibling* loop iterations
// into one task. VGC instead grows each task *downward*: a task that picks a
// frontier vertex keeps exploring the graph through multiple hops, using a
// task-local stack, until it has visited at least `tau` vertices. Only the
// overflow (vertices discovered after the budget is spent) is handed to the
// next shared frontier. On sparse large-diameter graphs this
//   (1) divides the number of global synchronizations by the hops a local
//       search advances, and
//   (2) snowballs the frontier so every core has work,
// at the cost of abandoning the strict BFS order — which is harmless for
// reachability-style computations, and handled with distance re-checks in
// BFS/SSSP.
#pragma once

#include <cstdint>
#include <vector>

#include "graphs/graph.h"
#include "pasgal/hashbag.h"
#include "pasgal/stats.h"

namespace pasgal {

struct VgcParams {
  // Minimum vertices a local search processes before spilling to the shared
  // frontier. tau = 1 degenerates to the classic one-hop frontier algorithm.
  std::uint32_t tau = 512;
  // Hard cap on the task-local stack (bounds per-task memory).
  std::uint32_t local_stack_cap = 4096;
};

// Generic reachability-flavoured local search.
//
//   try_mark(v) -> bool : attempt to claim v (atomically); true iff this call
//                         claimed it. Called at most once per discovery.
//
// Starting from `root` (which must already be claimed), explores out-edges of
// claimed vertices. Claimed vertices beyond the budget are inserted into
// `next` for the following round. Returns the number of vertices expanded.
template <typename TryMark>
std::uint64_t local_search(const Graph& g, VertexId root, const VgcParams& p,
                           TryMark&& try_mark, HashBag<VertexId>& next,
                           RunStats* stats = nullptr) {
  // Task-local stack; plain vector, no sharing.
  std::vector<VertexId> stack;
  stack.reserve(64);
  stack.push_back(root);
  std::uint64_t expanded = 0;
  std::uint64_t edges = 0;
  while (!stack.empty()) {
    VertexId u = stack.back();
    stack.pop_back();
    ++expanded;
    for (VertexId v : g.neighbors(u)) {
      ++edges;
      if (try_mark(v)) {
        if (expanded < p.tau && stack.size() < p.local_stack_cap) {
          stack.push_back(v);
        } else {
          next.insert(v);
        }
      }
    }
  }
  if (stats) {
    stats->add_edges(edges);
    stats->add_visits(expanded);
    stats->add_local_depth(expanded);
  }
  return expanded;
}

// Distance-aware local search for BFS/SSSP-style algorithms. Entries carry
// the tentative distance they were enqueued with; stale entries (their
// vertex's distance has since improved) are skipped.
//
//   relax(u, d_u, emit) : relax all out-edges of u given its distance d_u;
//                         for each improved neighbour call emit(v, d_v).
//
// Vertices improved beyond the budget go to `spill(v, d_v)`.
//
// Unlike the reachability search, this one expands FIFO: the task explores a
// *ball* around the root rather than a DFS tendril, so the tentative
// distances it assigns are (near-)exact within the ball and the spilled
// frontier sits a bounded number of hops ahead. With a LIFO stack the task
// would label a depth-tau path with path-length distances, all of which
// later rounds must correct.
template <typename Relax, typename Spill>
std::uint64_t local_search_dist(VertexId root, std::uint32_t root_dist,
                                const VgcParams& p, Relax&& relax,
                                Spill&& spill, RunStats* stats = nullptr) {
  struct Entry {
    VertexId v;
    std::uint32_t dist;
  };
  std::vector<Entry> queue;
  queue.reserve(64);
  queue.push_back({root, root_dist});
  std::size_t head = 0;
  std::uint64_t expanded = 0;
  while (head < queue.size()) {
    Entry e = queue[head++];
    ++expanded;
    relax(e.v, e.dist, [&](VertexId v, std::uint32_t d) {
      if (expanded < p.tau && queue.size() < p.local_stack_cap) {
        queue.push_back({v, d});
      } else {
        spill(v, d);
      }
    });
  }
  if (stats) {
    stats->add_visits(expanded);
    stats->add_local_depth(expanded);
  }
  return expanded;
}

}  // namespace pasgal
