#include "pasgal/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <new>
#include <set>
#include <utility>

#include "algorithms/bfs/bfs.h"
#include "algorithms/cc/cc.h"
#include "algorithms/cc/ldd.h"
#include "algorithms/kcore/kcore.h"
#include "algorithms/pagerank/pagerank.h"
#include "algorithms/sssp/sssp.h"
#include "algorithms/tc/tc.h"
#include "graphs/delta.h"
#include "graphs/graph_io.h"
#include "graphs/registry.h"
#include "pasgal/cancel.h"
#include "pasgal/cli.h"
#include "pasgal/error.h"
#include "pasgal/fault.h"
#include "pasgal/resource.h"
#include "pasgal/telemetry.h"

namespace pasgal {

namespace {

// A request line longer than this without a newline is a protocol violation
// (and a trivial memory-exhaustion vector), not a request.
constexpr std::size_t kMaxRequestLine = 16 * 1024;

bool ends_with_pgr(const std::string& s) {
  return s.size() > 4 && s.compare(s.size() - 4, 4, ".pgr") == 0;
}

// Responses are one line by contract; embedded newlines (e.g. in an error
// message quoting input) would desynchronize the protocol.
std::string one_line(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  while (!s.empty() && s.back() == ' ') s.pop_back();
  s.push_back('\n');
  return s;
}

struct Request {
  std::string cmd;
  std::map<std::string, std::string> kv;
  std::set<std::string> flags;
};

Request parse_request(const std::string& line) {
  Request req;
  std::size_t i = 0;
  auto next_token = [&]() -> std::string {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    return line.substr(start, i - start);
  };
  req.cmd = next_token();
  for (;;) {
    std::string tok = next_token();
    if (tok.empty()) break;
    std::size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      req.flags.insert(tok);
    } else if (eq == 0 || eq + 1 == tok.size()) {
      throw Error(ErrorCategory::kUsage,
                  "malformed token '" + tok + "' (expected key=value)");
    } else {
      req.kv[tok.substr(0, eq)] = tok.substr(eq + 1);
    }
  }
  return req;
}

// Strict option vocabulary: an unknown key is a typo the client should hear
// about, not a silently ignored knob.
void check_vocabulary(const Request& req, const std::set<std::string>& keys,
                      const std::set<std::string>& flags) {
  for (const auto& [k, v] : req.kv) {
    if (keys.count(k) == 0) {
      throw Error(ErrorCategory::kUsage,
                  req.cmd + ": unknown option '" + k + "='");
    }
  }
  for (const std::string& f : req.flags) {
    if (flags.count(f) == 0) {
      throw Error(ErrorCategory::kUsage,
                  req.cmd + ": unknown flag '" + f + "'");
    }
  }
}

std::string require_graph(const Request& req) {
  auto it = req.kv.find("graph");
  if (it == req.kv.end()) {
    throw Error(ErrorCategory::kUsage, req.cmd + ": missing graph=<path>");
  }
  if (!ends_with_pgr(it->second)) {
    throw Error(ErrorCategory::kUsage,
                req.cmd + ": '" + it->second +
                    "' is not a .pgr file (the server serves mmap-able .pgr "
                    "graphs only)");
  }
  return it->second;
}

std::uint64_t kv_int(const Request& req, const char* key,
                     std::uint64_t fallback, long long max_value) {
  auto it = req.kv.find(key);
  if (it == req.kv.end()) return fallback;
  return static_cast<std::uint64_t>(
      cli::parse_int(it->second, key, 0, max_value, ErrorCategory::kUsage));
}

// Windowed resident footprint for admission: offsets stay resident, the
// window bounds the targets payload, a compressed open adds its reusable
// decode buffer (at most one window's worth of edges), and transpose
// sections pay their own offsets + window. Mirrors the pricing the sharded
// open itself applies (GraphStorage::check_windowed_footprint).
std::uint64_t windowed_need(const PgrInfo& info, std::uint64_t window) {
  std::uint64_t per = (info.n + 1) * sizeof(std::uint64_t) + window;
  std::uint64_t need = per + (info.compressed ? window : 0);
  if (info.has_transpose) need += per;
  return need;
}

// The "shard" metrics object for a sharded query response (same shape the
// drivers emit via apps::record_shard): plan size + window budget and the
// activation counters summed over forward + transpose windows.
void record_shard(MetricsDoc& doc, const Graph& g) {
  const StorageRef& storage = g.storage();
  if (storage == nullptr || storage->shard_window() == nullptr) return;
  const MappedWindow& w = *storage->shard_window();
  std::uint64_t sweeps = w.sweeps();
  std::uint64_t faults = w.faults();
  if (StorageRef t = storage->transpose_cache();
      t != nullptr && t->shard_window() != nullptr) {
    sweeps += t->shard_window()->sweeps();
    faults += t->shard_window()->faults();
  }
  doc.set_shard(w.plan().size(), w.plan().window_bytes(), sweeps, faults);
}

// The "delta" metrics object for a query answered through an update overlay:
// overlay size as the algorithm saw it. The repair triple is zero here —
// only the drivers' incremental --updates path re-settles selectively.
void record_delta(MetricsDoc& doc, const Graph& g) {
  if (g.storage() == nullptr) return;
  std::shared_ptr<const DeltaSnapshot> d = g.storage()->delta_snapshot();
  if (d == nullptr) return;
  doc.set_delta(d->insert_count(), d->delete_count(), d->batches(), 0, 0,
                false);
}

// update's add=/del= values: comma-separated from:to pairs, each vertex a
// decimal id. Malformed pairs are typed usage errors naming the offender.
void parse_edge_pairs(const std::string& spec, EdgeUpdate::Op op,
                      std::vector<EdgeUpdate>& out) {
  std::size_t i = 0;
  while (i < spec.size()) {
    std::size_t comma = spec.find(',', i);
    if (comma == std::string::npos) comma = spec.size();
    std::string pair = spec.substr(i, comma - i);
    i = comma + 1;
    std::size_t colon = pair.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == pair.size()) {
      throw Error(ErrorCategory::kUsage,
                  "update: malformed edge '" + pair +
                      "' (expected <from>:<to>)");
    }
    EdgeUpdate u;
    u.op = op;
    u.from = static_cast<VertexId>(
        cli::parse_int(pair.substr(0, colon), "update edge endpoint", 0,
                       (1LL << 32) - 1, ErrorCategory::kUsage));
    u.to = static_cast<VertexId>(
        cli::parse_int(pair.substr(colon + 1), "update edge endpoint", 0,
                       (1LL << 32) - 1, ErrorCategory::kUsage));
    out.push_back(u);
  }
}

}  // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
}

std::uint64_t Server::admission_budget() const {
  if (opts_.admission_budget_bytes != 0) return opts_.admission_budget_bytes;
  return static_cast<std::uint64_t>(
      static_cast<double>(memory_limit_bytes()) * opts_.admission_fraction);
}

std::uint64_t Server::requests_ok() const {
  return requests_ok_.load(std::memory_order_relaxed);
}
std::uint64_t Server::requests_error() const {
  return requests_error_.load(std::memory_order_relaxed);
}
std::uint64_t Server::connections_dropped() const {
  return connections_dropped_.load(std::memory_order_relaxed);
}

void Server::bind() {
  if (opts_.socket_path.empty()) {
    throw Error(ErrorCategory::kUsage, "server: empty socket path");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw Error(ErrorCategory::kUsage,
                "server: socket path exceeds " +
                    std::to_string(sizeof(addr.sun_path) - 1) + " bytes",
                opts_.socket_path);
  }
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
              opts_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw Error(ErrorCategory::kIo,
                std::string("socket: ") + std::strerror(errno),
                opts_.socket_path);
  }
  ::unlink(opts_.socket_path.c_str());  // stale socket from a crashed run
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw Error(ErrorCategory::kIo,
                std::string("bind: ") + std::strerror(errno),
                opts_.socket_path);
  }
  if (::listen(listen_fd_, 64) != 0) {
    throw Error(ErrorCategory::kIo,
                std::string("listen: ") + std::strerror(errno),
                opts_.socket_path);
  }
  if (::pipe2(stop_pipe_, O_CLOEXEC | O_NONBLOCK) != 0) {
    throw Error(ErrorCategory::kIo,
                std::string("pipe2: ") + std::strerror(errno));
  }
}

void Server::request_stop() {
  stopping_.store(true, std::memory_order_release);
  if (stop_pipe_[1] >= 0) {
    char byte = 's';
    // Best-effort, async-signal-safe; a full pipe already woke everyone.
    [[maybe_unused]] ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
}

void Server::run() {
  if (listen_fd_ < 0) {
    throw Error(ErrorCategory::kUsage, "server: run() before bind()");
  }
  accept_loop();
  // Drain: no new accepts; every connection thread notices the stop pipe,
  // finishes its in-flight request, and exits.
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(connections_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(opts_.socket_path.c_str());
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    int rc = ::poll(pfd, 2, opts_.poll_tick_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;  // poll on our own fds failing is unrecoverable; drain
    }
    if (rc == 0 || (pfd[0].revents & POLLIN) == 0) continue;
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;  // client vanished between poll and accept
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void Server::handle_connection(int fd) {
  std::string buf;
  char chunk[4096];
  bool alive = true;
  while (alive) {
    // Serve every complete line already buffered.
    std::size_t nl;
    while (alive && (nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      alive = send_line(fd, handle_request(line));
    }
    if (!alive || stopping_.load(std::memory_order_acquire)) break;
    if (buf.size() > kMaxRequestLine) {
      requests_error_.fetch_add(1, std::memory_order_relaxed);
      send_line(fd, one_line("error [usage] request line exceeds " +
                             std::to_string(kMaxRequestLine) + " bytes"));
      break;
    }
    pollfd pfd[2] = {{fd, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    int rc = ::poll(pfd, 2, opts_.poll_tick_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfd[0].revents & (POLLIN | POLLHUP | POLLERR)) {
      ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
      if (got <= 0) break;  // client closed (or died)
      buf.append(chunk, static_cast<std::size_t>(got));
    }
  }
  ::close(fd);
}

bool Server::send_line(int fd, const std::string& line) {
  if (fault::should_fail("sock_write")) {
    // Simulated dead client: same handling as a real EPIPE below.
    connections_dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::size_t sent = 0;
  while (sent < line.size()) {
    // MSG_NOSIGNAL: a dead client must surface as EPIPE here, not as a
    // process-killing SIGPIPE.
    ssize_t n = ::send(fd, line.data() + sent, line.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      connections_dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// --- request handling --------------------------------------------------------

std::string Server::handle_request(const std::string& line) {
  try {
    Request req = parse_request(line);
    std::string out;
    if (req.cmd == "open") {
      check_vocabulary(req, {"graph"}, {"pin"});
      out = do_open(require_graph(req), req.flags.count("pin") != 0);
    } else if (req.cmd == "bfs" || req.cmd == "sssp") {
      check_vocabulary(req, {"graph", "source", "sources", "algo",
                             "deadline_ms"}, {});
      if (auto batch = req.kv.find("sources"); batch != req.kv.end()) {
        // Resolve the graph before the source list so every sources= error
        // below can carry it: a client multiplexing several graphs over one
        // connection cannot tell which request a bare "duplicate source"
        // line belonged to.
        std::string path = require_graph(req);
        if (req.kv.count("source") != 0) {
          throw Error(ErrorCategory::kUsage,
                      req.cmd + ": source= conflicts with sources= (give one "
                                "vertex or a batch)",
                      path);
        }
        // allow_file=false: a remote peer must not name paths on the serving
        // host. Oversized lists and duplicates are typed kUsage errors here,
        // never silently truncated.
        std::vector<std::uint32_t> sources;
        try {
          sources = cli::parse_sources(batch->second, /*allow_file=*/false);
        } catch (const Error& e) {
          // parse_sources knows nothing about graphs; re-raise with the
          // graph as file context ("[usage] <graph>: <message>").
          std::string msg = e.what();
          std::string prefix = std::string("[") + to_string(e.category()) +
                               "] ";
          if (msg.rfind(prefix, 0) == 0) msg = msg.substr(prefix.size());
          throw Error(e.category(), req.cmd + ": " + msg, path);
        }
        std::string algo = req.cmd == "bfs" ? "ms" : "rho";
        if (auto it = req.kv.find("algo"); it != req.kv.end()) {
          algo = it->second;
        }
        out = do_batch(req.cmd, path, sources, algo,
                       kv_int(req, "deadline_ms", opts_.default_deadline_ms,
                              1LL << 40));
      } else {
        std::string algo = req.cmd == "bfs" ? "pasgal" : "rho";
        if (auto it = req.kv.find("algo"); it != req.kv.end()) {
          algo = it->second;
        }
        out = do_query(req.cmd, require_graph(req),
                       kv_int(req, "source", 0, (1LL << 32) - 1), algo,
                       kv_int(req, "deadline_ms", opts_.default_deadline_ms,
                              1LL << 40));
      }
    } else if (req.cmd == "cc" || req.cmd == "kcore" ||
               req.cmd == "pagerank" || req.cmd == "tc") {
      check_vocabulary(req, {"graph", "algo", "deadline_ms"}, {});
      std::string algo = req.cmd == "cc" ? "uf" : "pasgal";
      if (auto it = req.kv.find("algo"); it != req.kv.end()) {
        algo = it->second;
      }
      out = do_family_query(req.cmd, require_graph(req), algo,
                            kv_int(req, "deadline_ms",
                                   opts_.default_deadline_ms, 1LL << 40));
    } else if (req.cmd == "update") {
      check_vocabulary(req, {"graph", "add", "del", "deadline_ms"}, {});
      auto add_it = req.kv.find("add");
      auto del_it = req.kv.find("del");
      out = do_update(require_graph(req),
                      add_it == req.kv.end() ? std::string() : add_it->second,
                      del_it == req.kv.end() ? std::string() : del_it->second,
                      kv_int(req, "deadline_ms", opts_.default_deadline_ms,
                             1LL << 40));
    } else if (req.cmd == "compact") {
      check_vocabulary(req, {"graph", "deadline_ms"}, {});
      out = do_compact(require_graph(req),
                       kv_int(req, "deadline_ms", opts_.default_deadline_ms,
                              1LL << 40));
    } else if (req.cmd == "stats") {
      check_vocabulary(req, {}, {});
      out = do_stats();
    } else if (req.cmd == "evict") {
      check_vocabulary(req, {"graph"}, {});
      out = do_evict(require_graph(req));
    } else if (req.cmd == "shutdown") {
      check_vocabulary(req, {}, {});
      request_stop();
      out = "ok draining";
    } else {
      throw Error(ErrorCategory::kUsage,
                  "unknown command '" + req.cmd +
                      "' (expected open|bfs|sssp|cc|kcore|pagerank|tc|"
                      "update|compact|stats|evict|shutdown)");
    }
    requests_ok_.fetch_add(1, std::memory_order_relaxed);
    return one_line(std::move(out));
  } catch (const Error& e) {
    requests_error_.fetch_add(1, std::memory_order_relaxed);
    return one_line(std::string("error ") + e.what());
  } catch (const std::bad_alloc&) {
    requests_error_.fetch_add(1, std::memory_order_relaxed);
    return one_line(
        "error [resource] allocation failed mid-request (admission control "
        "undersized; lower the budget)");
  } catch (const std::exception& e) {
    requests_error_.fetch_add(1, std::memory_order_relaxed);
    return one_line(std::string("error [internal] ") + e.what());
  }
}

PgrShardSpec Server::admit(const std::string& path) {
  // Header-only probe: costs one pread-sized mapping, no section bytes.
  // Throws the reader's typed kIo/kFormat on a missing/corrupt file, which
  // is the right response before any admission math.
  PgrInfo info = probe_pgr(path);
  std::uint64_t budget = admission_budget();
  GraphRegistry& reg = GraphRegistry::instance();

  // Evict unpinned LRU entries until `need` fits the budget; throws the
  // typed kResource when nothing evictable remains and it still does not.
  auto free_up = [&](std::uint64_t need) {
    std::uint64_t resident = reg.stats().resident_bytes;
    if (resident + need > budget) {
      reg.evict_lru(resident + need - budget);
      resident = reg.stats().resident_bytes;
    }
    if (resident + need > budget) {
      throw Error(
          ErrorCategory::kResource,
          "admission: graph needs " + std::to_string(need) +
              " bytes but only " +
              std::to_string(budget > resident ? budget - resident : 0) +
              " of the " + std::to_string(budget) +
              "-byte budget is free (" + std::to_string(resident) +
              " resident, nothing evictable left)",
          path);
    }
  };

  if (opts_.shard_window_bytes != 0) {
    // Fixed server-wide window: every open is sharded and priced at its
    // windowed footprint (the whole file is mapped but not resident).
    PgrShardSpec spec;
    spec.window_bytes = opts_.shard_window_bytes;
    free_up(windowed_need(info, spec.window_bytes));
    return spec;
  }

  std::uint64_t in_core = info.file_bytes;
  if (info.compressed) {
    // Compressed targets decode into a heap array on an in-core open.
    in_core += info.m * sizeof(VertexId);
  }
  if (opts_.shard_auto) {
    // Shard only when in-core admission is hopeless even with the whole
    // budget free: otherwise prefer the shared resident mapping.
    if (in_core > budget) {
      PgrShardSpec spec;
      spec.window_bytes =
          std::max<std::uint64_t>(budget / 4, std::uint64_t{1} << 20);
      free_up(windowed_need(info, spec.window_bytes));
      return spec;
    }
  }
  free_up(in_core);
  return {};
}

PgrShardSpec Server::ensure_open(const std::string& path) {
  GraphRegistry& reg = GraphRegistry::instance();
  // retain() doubles as the residency probe: true means a live mapping
  // exists (and is now kept alive for future requests). With a fixed shard
  // window the registry is bypassed entirely — every query owns a window.
  if (opts_.shard_window_bytes == 0 && reg.retain(path)) return {};
  PgrShardSpec spec = admit(path);
  if (spec.enabled()) return spec;  // the query opens its own window
  {
    // read_pgr may decode compressed targets with parallel_for: scheduler
    // work, so it takes the exec lock like any query (see server.h).
    std::lock_guard<std::mutex> exec(exec_mu_);
    Graph g = read_pgr(path);
    // Retain while g still holds the mapping — once g dies the registry
    // entry is a tombstone and retain() would miss.
    reg.retain(path);
  }
  return {};
}

std::string Server::do_open(const std::string& path, bool pin) {
  GraphRegistry& reg = GraphRegistry::instance();
  bool warm = opts_.shard_window_bytes == 0 && reg.retain(path);
  PgrShardSpec spec;
  if (!warm) {
    spec = admit(path);
    if (spec.enabled() && pin) {
      throw Error(ErrorCategory::kUsage,
                  "open: pin conflicts with sharded mode — a sharded open is "
                  "a per-query window, there is no resident mapping to pin",
                  path);
    }
    std::lock_guard<std::mutex> exec(exec_mu_);
    // A sharded open validates shard-at-a-time and is dropped right after:
    // `open` then means "readable, well-formed, admitted", and each query
    // re-opens its own window.
    Graph g = read_pgr(path, PgrOpen::kMmap, false, nullptr, spec);
    (void)g;
    if (!spec.enabled()) reg.retain(path);
  }
  if (pin) reg.pin(path);
  PgrInfo info = probe_pgr(path);
  std::string out = "ok opened graph=" + path + " n=" + std::to_string(info.n) +
                    " m=" + std::to_string(info.m) +
                    " bytes=" + std::to_string(info.file_bytes) +
                    " warm=" + (warm ? "1" : "0") +
                    " pinned=" + (pin ? "1" : "0");
  if (spec.enabled()) {
    out += " sharded=1 window_bytes=" + std::to_string(spec.window_bytes);
  }
  return out;
}

std::string Server::do_query(const std::string& cmd, const std::string& path,
                             std::uint64_t source, const std::string& algo,
                             std::uint64_t deadline_ms) {
  PgrShardSpec spec = ensure_open(path);

  CancelToken token;
  if (deadline_ms != 0) token.set_deadline_ms(deadline_ms);

  AlgoOptions opt;
  opt.source = static_cast<VertexId>(source);
  opt.cancel = &token;

  // One external thread at a time may drive the work-stealing pool (all
  // non-pool threads share worker slot 0); everything below — validation,
  // transpose, the run itself — is parallel.
  std::lock_guard<std::mutex> exec(exec_mu_);

  if (cmd == "bfs") {
    // In-core: registry hit sharing the retained mapping. Sharded: a fresh
    // windowed open owned by this query alone.
    Graph g = read_pgr(path, PgrOpen::kMmap, false, nullptr, spec);
    if (source >= g.num_vertices()) {
      throw Error(ErrorCategory::kUsage,
                  "source=" + std::to_string(source) + " out of range (n=" +
                      std::to_string(g.num_vertices()) + ")");
    }
    Graph gt = g.transpose();  // memoized on the shared storage handle
    RunReport<std::vector<std::uint32_t>> report;
    if (algo == "pasgal") {
      report = pasgal_bfs(g, gt, opt);
    } else if (algo == "gbbs") {
      report = gbbs_bfs(g, gt, opt);
    } else {
      throw Error(ErrorCategory::kUsage,
                  "bfs: unknown algo '" + algo + "' (expected pasgal|gbbs)");
    }
    MetricsDoc doc("bfs", algo, path, g.num_vertices(), g.num_edges());
    doc.set_param("source", source);
    if (deadline_ms != 0) doc.set_param("deadline_ms", deadline_ms);
    doc.add_trial(report.seconds, report.telemetry);
    record_shard(doc, g);
    record_delta(doc, g);
    return doc.to_json();
  }

  // sssp: the file must carry a weights section (typed error otherwise).
  if (algo != "rho" && algo != "delta" && algo != "em") {
    throw Error(ErrorCategory::kUsage,
                "sssp: unknown algo '" + algo + "' (expected rho|delta|em)");
  }
  WeightedGraph<std::uint32_t> wg =
      read_weighted_pgr(path, PgrOpen::kMmap, false, nullptr, spec);
  if (source >= wg.num_vertices()) {
    throw Error(ErrorCategory::kUsage,
                "source=" + std::to_string(source) + " out of range (n=" +
                    std::to_string(wg.num_vertices()) + ")");
  }
  opt.sssp_delta_mode = algo == "delta";
  RunReport<std::vector<Dist>> report =
      algo == "em" ? em_bellman_ford(wg, opt) : stepping_sssp(wg, opt);
  MetricsDoc doc("sssp", algo, path, wg.num_vertices(), wg.num_edges());
  doc.set_param("source", source);
  if (deadline_ms != 0) doc.set_param("deadline_ms", deadline_ms);
  doc.add_trial(report.seconds, report.telemetry);
  record_shard(doc, wg.unweighted());
  return doc.to_json();
}

std::string Server::do_batch(const std::string& cmd, const std::string& path,
                             const std::vector<std::uint32_t>& sources,
                             const std::string& algo,
                             std::uint64_t deadline_ms) {
  PgrShardSpec spec = ensure_open(path);

  CancelToken token;
  if (deadline_ms != 0) token.set_deadline_ms(deadline_ms);

  BatchOptions bopt;
  bopt.sources = sources;
  bopt.algo.cancel = &token;

  std::lock_guard<std::mutex> exec(exec_mu_);

  if (cmd == "bfs") {
    if (algo != "ms") {
      throw Error(ErrorCategory::kUsage,
                  "bfs: algo '" + algo +
                      "' has no batch mode (sources= runs the bit-parallel "
                      "ms kernel)");
    }
    Graph g = read_pgr(path, PgrOpen::kMmap, false, nullptr, spec);
    Graph gt = g.transpose();
    // ms_bfs range-checks the sources against this graph (typed kUsage).
    BatchReport<std::vector<std::uint32_t>> report = ms_bfs(g, gt, bopt);
    MetricsDoc doc("bfs", algo, path, g.num_vertices(), g.num_edges());
    if (deadline_ms != 0) doc.set_param("deadline_ms", deadline_ms);
    doc.set_batch(sources, report.seconds);
    doc.add_trial(report.seconds, report.telemetry);
    record_shard(doc, g);
    return doc.to_json();
  }

  if (algo != "rho" && algo != "delta") {
    throw Error(ErrorCategory::kUsage,
                "sssp: unknown algo '" + algo + "' (expected rho|delta)");
  }
  WeightedGraph<std::uint32_t> wg =
      read_weighted_pgr(path, PgrOpen::kMmap, false, nullptr, spec);
  bopt.algo.sssp_delta_mode = algo == "delta";
  BatchReport<std::vector<Dist>> report = batch_sssp(wg, bopt);
  MetricsDoc doc("sssp", algo, path, wg.num_vertices(), wg.num_edges());
  if (deadline_ms != 0) doc.set_param("deadline_ms", deadline_ms);
  doc.set_batch(sources, report.seconds);
  doc.add_trial(report.seconds, report.telemetry);
  record_shard(doc, wg.unweighted());
  return doc.to_json();
}

std::string Server::do_family_query(const std::string& cmd,
                                    const std::string& path,
                                    const std::string& algo,
                                    std::uint64_t deadline_ms) {
  // Validate the algo string before any I/O so a typo costs nothing.
  if (cmd == "cc") {
    if (algo != "uf" && algo != "lp" && algo != "ldd") {
      throw Error(ErrorCategory::kUsage,
                  "cc: unknown algo '" + algo + "' (expected uf|lp|ldd)");
    }
  } else if (algo != "pasgal" && algo != "seq") {
    throw Error(ErrorCategory::kUsage, cmd + ": unknown algo '" + algo +
                                           "' (expected pasgal|seq)");
  }

  PgrShardSpec spec = ensure_open(path);

  CancelToken token;
  if (deadline_ms != 0) token.set_deadline_ms(deadline_ms);

  AlgoOptions opt;
  opt.cancel = &token;

  std::lock_guard<std::mutex> exec(exec_mu_);

  Graph g = read_pgr(path, PgrOpen::kMmap, false, nullptr, spec);
  MetricsDoc doc(cmd, algo, path, g.num_vertices(), g.num_edges());
  if (deadline_ms != 0) doc.set_param("deadline_ms", deadline_ms);

  if (cmd == "pagerank") {
    // The dense pull walks the transpose's shard plan, so pagerank (pasgal
    // variant) stays correct on sharded opens; seq refuses with a typed
    // error from its own ensure_in_core.
    Graph gt = g.transpose();
    RunReport<PagerankResult> report = algo == "pasgal"
                                           ? pasgal_pagerank(g, gt, opt)
                                           : seq_pagerank(g, gt, opt);
    doc.set_param("iterations",
                  static_cast<std::uint64_t>(report.output.iterations));
    doc.add_trial(report.seconds, report.telemetry);
    record_shard(doc, g);
    record_delta(doc, g);
    return doc.to_json();
  }

  // cc / kcore / tc are defined on the undirected graph. symmetrize() needs
  // the whole edge set in core, so on a sharded open it throws the typed
  // kUsage error instead of silently faulting past the window.
  Graph sg = g.symmetrize();
  if (cmd == "cc") {
    RunReport<std::vector<VertexId>> report;
    if (algo == "uf") {
      RunReport<ConnectivityResult> uf = connected_components(sg, opt);
      report.output = std::move(uf.output.label);
      report.seconds = uf.seconds;
      report.telemetry = std::move(uf.telemetry);
    } else {
      report = algo == "lp" ? label_prop_cc(sg, opt) : ldd_cc(sg, opt);
    }
    doc.add_trial(report.seconds, report.telemetry);
  } else if (cmd == "kcore") {
    RunReport<std::vector<std::uint32_t>> report =
        algo == "pasgal" ? pasgal_kcore(sg, opt) : seq_kcore(sg, opt);
    doc.add_trial(report.seconds, report.telemetry);
  } else {
    RunReport<std::uint64_t> report =
        algo == "pasgal" ? pasgal_tc(sg, opt) : seq_tc(sg, opt);
    doc.set_param("triangles", report.output);
    doc.add_trial(report.seconds, report.telemetry);
  }
  record_shard(doc, g);
  record_delta(doc, g);
  return doc.to_json();
}

std::string Server::do_update(const std::string& path,
                              const std::string& add_spec,
                              const std::string& del_spec,
                              std::uint64_t deadline_ms) {
  if (opts_.shard_window_bytes != 0) {
    throw Error(ErrorCategory::kUsage,
                "update: sharded serving mode (--shard-mb) serves immutable "
                "per-query windows; updates need an in-core resident mapping",
                path);
  }
  std::vector<EdgeUpdate> batch;
  parse_edge_pairs(add_spec, EdgeUpdate::Op::kInsert, batch);
  parse_edge_pairs(del_spec, EdgeUpdate::Op::kDelete, batch);
  if (batch.empty()) {
    throw Error(ErrorCategory::kUsage,
                "update: empty batch (give add=<u:v,...> and/or "
                "del=<u:v,...>)",
                path);
  }

  PgrShardSpec spec = ensure_open(path);
  if (spec.enabled()) {
    throw Error(ErrorCategory::kUsage,
                "update: graph does not fit in core (shard_auto chose a "
                "windowed open); raise the admission budget or compact",
                path);
  }

  CancelToken token;
  if (deadline_ms != 0) token.set_deadline_ms(deadline_ms);

  GraphRegistry& reg = GraphRegistry::instance();
  std::lock_guard<std::mutex> exec(exec_mu_);
  Graph g = read_pgr(path);  // registry hit: the retained resident mapping

  // Admission pricing for the overlay growth: the rebuilt snapshot re-copies
  // the old patches plus this batch on both sides (forward + flipped), and
  // each side carries two full offset arrays. Priced before apply so an
  // over-budget update is refused with nothing mutated.
  std::uint64_t budget = admission_budget();
  std::uint64_t old_bytes = 0, old_edges = 0;
  if (std::shared_ptr<const DeltaSnapshot> d = g.storage()->delta_snapshot()) {
    old_bytes = d->resident_bytes();
    old_edges = d->insert_count() + d->delete_count();
  }
  std::uint64_t need =
      4 * (g.num_vertices() + 1) * sizeof(std::uint64_t) +
      2 * 2 * (old_edges + batch.size()) * sizeof(VertexId);
  need = need > old_bytes ? need - old_bytes : 0;
  std::uint64_t resident = reg.stats().resident_bytes;
  if (resident + need > budget) {
    reg.evict_lru(resident + need - budget);
    resident = reg.stats().resident_bytes;
  }
  if (resident + need > budget) {
    throw Error(ErrorCategory::kResource,
                "update: overlay growth needs " + std::to_string(need) +
                    " bytes but the " + std::to_string(budget) +
                    "-byte budget has " + std::to_string(resident) +
                    " resident and nothing evictable left",
                path);
  }

  token.check("update admission");
  ApplyStats stats = apply_updates(g, batch);
  token.check("update apply");
  // Pin: LRU eviction of a graph with pending updates would silently drop
  // them; only an explicit evict (which reports the drop) may do that.
  reg.pin(path);
  return "ok updated graph=" + path +
         " batch_inserts=" + std::to_string(stats.batch_inserts) +
         " batch_deletes=" + std::to_string(stats.batch_deletes) +
         " inserts=" + std::to_string(stats.inserts) +
         " deletes=" + std::to_string(stats.deletes) +
         " batches=" + std::to_string(stats.batches) +
         " overlay_bytes=" + std::to_string(stats.overlay_bytes) + " pinned=1";
}

std::string Server::do_compact(const std::string& path,
                               std::uint64_t deadline_ms) {
  if (opts_.shard_window_bytes != 0) {
    throw Error(ErrorCategory::kUsage,
                "compact: sharded serving mode has no resident overlay to "
                "fold",
                path);
  }
  GraphRegistry& reg = GraphRegistry::instance();
  if (!reg.retain(path)) {
    throw Error(ErrorCategory::kUsage,
                "compact: graph is not resident (open/update it first)", path);
  }

  CancelToken token;
  if (deadline_ms != 0) token.set_deadline_ms(deadline_ms);

  std::lock_guard<std::mutex> exec(exec_mu_);
  Graph g = read_pgr(path);  // registry hit
  std::shared_ptr<const DeltaSnapshot> d = g.storage()->delta_snapshot();
  if (d == nullptr) {
    return "ok compacted graph=" + path + " noop=1";
  }
  std::uint64_t folded_ins = d->insert_count();
  std::uint64_t folded_del = d->delete_count();

  token.check("compact admission");
  Graph folded = materialize_effective(g);
  token.check("compact materialize");

  PgrInfo info = probe_pgr(path);
  PgrWriteOptions wopts;
  wopts.include_transpose = info.has_transpose;
  wopts.symmetric = info.symmetric;
  wopts.compress_targets = info.compressed;
  std::string tmp = path + ".compact.tmp";
  write_pgr(folded, tmp, wopts);

  // Drop the stale entry while `path` still stats to the old bytes — after
  // the rename its FileKey no longer matches and the pinned entry would be
  // an unreachable zombie holding the pre-compact mapping alive.
  reg.unpin(path);
  reg.evict(path);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    int err = errno;
    std::remove(tmp.c_str());
    throw Error(ErrorCategory::kIo,
                std::string("compact rename: ") + std::strerror(err), path);
  }
  // The next open stats the rewritten file: new size/mtime, new key, fresh
  // mapping of the folded bytes (registry rewrite detection).
  return "ok compacted graph=" + path +
         " inserts_folded=" + std::to_string(folded_ins) +
         " deletes_folded=" + std::to_string(folded_del) +
         " n=" + std::to_string(folded.num_vertices()) +
         " m=" + std::to_string(folded.num_edges());
}

std::string Server::do_stats() {
  GraphRegistry::Stats st = GraphRegistry::instance().stats();
  return "ok entries=" + std::to_string(st.entries) +
         " resident_bytes=" + std::to_string(st.resident_bytes) +
         " pinned=" + std::to_string(st.pinned_entries) +
         " pinned_bytes=" + std::to_string(st.pinned_bytes) +
         " retained=" + std::to_string(st.retained_entries) +
         " hits=" + std::to_string(st.hits) +
         " misses=" + std::to_string(st.misses) +
         " evictions=" + std::to_string(st.evictions) +
         " budget_bytes=" + std::to_string(admission_budget()) +
         " requests_ok=" + std::to_string(requests_ok()) +
         " requests_error=" + std::to_string(requests_error()) +
         " connections_dropped=" + std::to_string(connections_dropped());
}

std::string Server::do_evict(const std::string& path) {
  GraphRegistry& reg = GraphRegistry::instance();
  // An explicit evict is allowed to discard pending updates, but never
  // silently: count them while the mapping is still reachable.
  std::uint64_t dropped = 0;
  if (reg.retain(path)) {
    Graph g = read_pgr(path);  // registry hit on the retained mapping
    if (std::shared_ptr<const DeltaSnapshot> d =
            g.storage()->delta_snapshot()) {
      dropped = d->insert_count() + d->delete_count();
    }
  }
  reg.unpin(path);
  if (!reg.evict(path)) {
    throw Error(ErrorCategory::kValidation, "not open", path);
  }
  std::string out = "ok evicted graph=" + path;
  if (dropped != 0) out += " dropped_updates=" + std::to_string(dropped);
  return out;
}

}  // namespace pasgal
