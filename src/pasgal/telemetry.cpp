#include "pasgal/telemetry.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <unordered_set>

// For kMaxBatchSources (batch schema validation). options.h includes this
// header, so the dependency may only run in this direction from the .cpp.
#include "pasgal/options.h"

namespace pasgal {

// --- Tracer ------------------------------------------------------------------

Tracer::Tracer() { reset(); }

void Tracer::reset() {
  slots_.assign(static_cast<std::size_t>(num_workers()), Slot{});
  frontier_sizes_.clear();
  round_trace_.clear();
  pending_kind_ = RoundKind::kSparse;
  pending_delta_ = -1.0;
  prev_edges_ = 0;
  prev_visits_ = 0;
  run_start_ = std::chrono::steady_clock::now();
  last_round_ = run_start_;
  sched_epoch_ = Scheduler::instance().counters();
  phases_.clear();
  open_phase_ = nullptr;
}

int Tracer::depth_bucket(std::uint64_t expanded) {
  if (expanded == 0) return 0;
  int b = std::bit_width(expanded);  // [2^(b-1), 2^b)
  return b < kDepthHistBuckets ? b : kDepthHistBuckets - 1;
}

void Tracer::sum_hot(std::uint64_t& edges, std::uint64_t& visits) const {
  edges = 0;
  visits = 0;
  for (const Slot& s : slots_) {
    edges += s.edges;
    visits += s.visits;
  }
}

void Tracer::end_round(std::uint64_t frontier_size) {
  end_round(frontier_size, pending_kind_);
}

void Tracer::end_round(std::uint64_t frontier_size, RoundKind kind) {
  std::uint64_t ce, cv;
  sum_hot(ce, cv);
  auto now = std::chrono::steady_clock::now();
  RoundTrace t;
  t.index = static_cast<std::uint64_t>(round_trace_.size());
  t.frontier = frontier_size;
  t.kind = kind;
  t.cum_edges = ce;
  t.cum_visits = cv;
  t.edges = ce - prev_edges_;
  t.visits = cv - prev_visits_;
  t.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - last_round_)
          .count());
  t.delta = pending_delta_;
  prev_edges_ = ce;
  prev_visits_ = cv;
  last_round_ = now;
  pending_kind_ = RoundKind::kSparse;
  pending_delta_ = -1.0;
  round_trace_.push_back(t);
  frontier_sizes_.push_back(frontier_size);
}

void Tracer::phase_begin(const char* name) {
  if (open_phase_) phase_end();  // non-reentrant: close the previous one
  open_phase_ = name;
  phase_start_ = std::chrono::steady_clock::now();
}

void Tracer::phase_end() {
  if (!open_phase_) return;
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - phase_start_)
                .count();
  phases_.push_back({open_phase_, static_cast<std::uint64_t>(ns)});
  open_phase_ = nullptr;
}

std::uint64_t Tracer::edges_scanned() const {
  std::uint64_t e, v;
  sum_hot(e, v);
  return e;
}

std::uint64_t Tracer::vertices_visited() const {
  std::uint64_t e, v;
  sum_hot(e, v);
  return v;
}

std::uint64_t Tracer::max_frontier() const {
  std::uint64_t best = 0;
  for (std::uint64_t f : frontier_sizes_) best = std::max(best, f);
  return best;
}

RunTelemetry Tracer::aggregate() const {
  RunTelemetry out;
  sum_hot(out.edges_scanned, out.vertices_visited);
  out.max_frontier = max_frontier();
  out.rounds = round_trace_;
  for (const Slot& s : slots_) {
    for (int b = 0; b < kDepthHistBuckets; ++b) {
      out.vgc_depth_hist[static_cast<std::size_t>(b)] += s.depth_hist[b];
    }
    out.hashbag.inserts += s.bag_inserts;
    out.hashbag.block_advances += s.bag_advances;
    out.hashbag.extracts += s.bag_extracts;
    out.hashbag.peak_extract = std::max(out.hashbag.peak_extract, s.bag_peak);
  }
  // Scheduler deltas since reset(). The pool may have been rebuilt with a
  // different size in between (tests); diff the overlap and saturate.
  std::vector<WorkerCounters> now = Scheduler::instance().counters();
  out.scheduler.per_worker.resize(now.size());
  for (std::size_t i = 0; i < now.size(); ++i) {
    WorkerCounters base =
        i < sched_epoch_.size() ? sched_epoch_[i] : WorkerCounters{};
    auto sat = [](std::uint64_t a, std::uint64_t b) {
      return a > b ? a - b : 0;
    };
    out.scheduler.per_worker[i].steals = sat(now[i].steals, base.steals);
    out.scheduler.per_worker[i].tasks = sat(now[i].tasks, base.tasks);
    out.scheduler.per_worker[i].busy_ns = sat(now[i].busy_ns, base.busy_ns);
    out.scheduler.per_worker[i].idle_ns = sat(now[i].idle_ns, base.idle_ns);
  }
  out.phases = phases_;
  return out;
}

// --- JSON writer -------------------------------------------------------------

namespace json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

// --- JSON parser (recursive descent) ---

namespace {

struct Parser {
  const char* p;
  const char* end;
  int depth = 0;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  Status fail(const std::string& what) {
    return Status::Failure(ErrorCategory::kFormat,
                           "JSON parse error at byte offset " +
                               std::to_string(pos()) + ": " + what);
  }
  std::uint64_t pos() const { return static_cast<std::uint64_t>(p - start); }
  const char* start;

  Status parse_value(Value& out) {
    if (++depth > 64) return fail("nesting too deep");
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    Status s;
    switch (*p) {
      case '{': s = parse_object(out); break;
      case '[': s = parse_array(out); break;
      case '"':
        out.kind = Value::Kind::kString;
        s = parse_string(out.str);
        break;
      case 't':
      case 'f': s = parse_bool(out); break;
      case 'n': s = parse_null(out); break;
      default: s = parse_number(out);
    }
    --depth;
    return s;
  }

  Status parse_object(Value& out) {
    out.kind = Value::Kind::kObject;
    ++p;  // '{'
    skip_ws();
    if (p < end && *p == '}') {
      ++p;
      return Status::Ok();
    }
    for (;;) {
      skip_ws();
      if (p >= end || *p != '"') return fail("expected object key");
      std::string key;
      if (Status s = parse_string(key); !s.ok()) return s;
      skip_ws();
      if (p >= end || *p != ':') return fail("expected ':'");
      ++p;
      Value v;
      if (Status s = parse_value(v); !s.ok()) return s;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return Status::Ok();
      }
      return fail("expected ',' or '}'");
    }
  }

  Status parse_array(Value& out) {
    out.kind = Value::Kind::kArray;
    ++p;  // '['
    skip_ws();
    if (p < end && *p == ']') {
      ++p;
      return Status::Ok();
    }
    for (;;) {
      Value v;
      if (Status s = parse_value(v); !s.ok()) return s;
      out.array.push_back(std::move(v));
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return Status::Ok();
      }
      return fail("expected ',' or ']'");
    }
  }

  Status parse_string(std::string& out) {
    ++p;  // opening quote
    out.clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return fail("unterminated escape");
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (end - p < 5) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              char c = p[i];
              code <<= 4;
              if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
              else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
              else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // The writer only emits \u for control characters; decode the
            // BMP code point as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            p += 4;
            break;
          }
          default: return fail("unknown escape");
        }
        ++p;
      } else if (static_cast<unsigned char>(*p) < 0x20) {
        return fail("raw control character in string");
      } else {
        out += *p++;
      }
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // closing quote
    return Status::Ok();
  }

  Status parse_bool(Value& out) {
    out.kind = Value::Kind::kBool;
    if (end - p >= 4 && std::strncmp(p, "true", 4) == 0) {
      out.boolean = true;
      p += 4;
      return Status::Ok();
    }
    if (end - p >= 5 && std::strncmp(p, "false", 5) == 0) {
      out.boolean = false;
      p += 5;
      return Status::Ok();
    }
    return fail("bad literal");
  }

  Status parse_null(Value& out) {
    out.kind = Value::Kind::kNull;
    if (end - p >= 4 && std::strncmp(p, "null", 4) == 0) {
      p += 4;
      return Status::Ok();
    }
    return fail("bad literal");
  }

  Status parse_number(Value& out) {
    out.kind = Value::Kind::kNumber;
    char* num_end = nullptr;
    // strtod accepts a superset (hex, inf); restrict the first character to
    // JSON's grammar and re-check that something was consumed.
    if (*p != '-' && (*p < '0' || *p > '9')) return fail("unexpected token");
    out.number = std::strtod(p, &num_end);
    if (num_end == p || num_end > end) return fail("bad number");
    p = num_end;
    return Status::Ok();
  }
};

}  // namespace

Status parse(const std::string& text, Value& out) {
  Parser parser{text.data(), text.data() + text.size(), 0, text.data()};
  if (Status s = parser.parse_value(out); !s.ok()) return s;
  parser.skip_ws();
  if (parser.p != parser.end) return parser.fail("trailing garbage");
  return Status::Ok();
}

}  // namespace json

// --- serialization -----------------------------------------------------------

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_kv(std::string& out, const char* key, std::uint64_t v) {
  out += '"';
  out += key;
  out += "\":";
  append_u64(out, v);
}

void append_worker(std::string& out, const WorkerCounters& w) {
  out += '{';
  append_kv(out, "steals", w.steals);
  out += ',';
  append_kv(out, "tasks", w.tasks);
  out += ',';
  append_kv(out, "busy_ns", w.busy_ns);
  out += ',';
  append_kv(out, "idle_ns", w.idle_ns);
  out += '}';
}

}  // namespace

std::string to_json(const RunTelemetry& t) {
  std::string out;
  out.reserve(512 + t.rounds.size() * 96);
  out += "{\"totals\":{";
  append_kv(out, "rounds", static_cast<std::uint64_t>(t.rounds.size()));
  out += ',';
  append_kv(out, "edges_scanned", t.edges_scanned);
  out += ',';
  append_kv(out, "vertices_visited", t.vertices_visited);
  out += ',';
  append_kv(out, "max_frontier", t.max_frontier);
  std::size_t serialized =
      std::min<std::size_t>(t.rounds.size(), kMaxSerializedRounds);
  out += "},\"rounds_omitted\":";
  append_u64(out, static_cast<std::uint64_t>(t.rounds.size() - serialized));
  out += ",\"rounds\":[";
  for (std::size_t i = 0; i < serialized; ++i) {
    const RoundTrace& r = t.rounds[i];
    if (i) out += ',';
    out += '{';
    append_kv(out, "index", r.index);
    out += ',';
    append_kv(out, "frontier", r.frontier);
    out += ",\"kind\":\"";
    out += round_kind_name(r.kind);
    out += "\",";
    append_kv(out, "edges", r.edges);
    out += ',';
    append_kv(out, "visits", r.visits);
    out += ',';
    append_kv(out, "cum_edges", r.cum_edges);
    out += ',';
    append_kv(out, "cum_visits", r.cum_visits);
    out += ',';
    append_kv(out, "wall_ns", r.wall_ns);
    if (r.delta >= 0) {
      out += ",\"delta\":";
      append_double(out, r.delta);
    }
    out += '}';
  }
  out += "],\"vgc_depth_hist\":[";
  for (int b = 0; b < kDepthHistBuckets; ++b) {
    if (b) out += ',';
    append_u64(out, t.vgc_depth_hist[static_cast<std::size_t>(b)]);
  }
  out += "],\"hashbag\":{";
  append_kv(out, "inserts", t.hashbag.inserts);
  out += ',';
  append_kv(out, "block_advances", t.hashbag.block_advances);
  out += ',';
  append_kv(out, "extracts", t.hashbag.extracts);
  out += ',';
  append_kv(out, "peak_extract", t.hashbag.peak_extract);
  out += "},\"scheduler\":{";
  append_kv(out, "workers",
            static_cast<std::uint64_t>(t.scheduler.per_worker.size()));
  out += ',';
  WorkerCounters total = t.scheduler.total();
  append_kv(out, "steals", total.steals);
  out += ',';
  append_kv(out, "tasks", total.tasks);
  out += ',';
  append_kv(out, "busy_ns", total.busy_ns);
  out += ',';
  append_kv(out, "idle_ns", total.idle_ns);
  out += ",\"per_worker\":[";
  for (std::size_t i = 0; i < t.scheduler.per_worker.size(); ++i) {
    if (i) out += ',';
    append_worker(out, t.scheduler.per_worker[i]);
  }
  out += "]},\"phases\":[";
  for (std::size_t i = 0; i < t.phases.size(); ++i) {
    if (i) out += ',';
    out += "{\"name\":\"";
    out += json::escape(t.phases[i].name);
    out += "\",";
    append_kv(out, "ns", t.phases[i].ns);
    out += '}';
  }
  out += "]}";
  return out;
}

// --- MetricsDoc --------------------------------------------------------------

MetricsDoc::MetricsDoc(std::string algo, std::string variant,
                       std::string graph_spec, std::uint64_t n, std::uint64_t m)
    : algo_(std::move(algo)),
      variant_(std::move(variant)),
      graph_spec_(std::move(graph_spec)),
      n_(n),
      m_(m),
      workers_(num_workers()) {}

void MetricsDoc::set_param(const std::string& name, std::uint64_t value) {
  std::string encoded;
  append_u64(encoded, value);
  params_.emplace_back(name, std::move(encoded));
}

void MetricsDoc::set_param(const std::string& name, double value) {
  std::string encoded;
  append_double(encoded, value);
  params_.emplace_back(name, std::move(encoded));
}

void MetricsDoc::set_param(const std::string& name, const std::string& value) {
  params_.emplace_back(name, "\"" + json::escape(value) + "\"");
}

void MetricsDoc::add_trial(double seconds, const RunTelemetry& telemetry) {
  trials_.push_back({seconds, telemetry});
}

void MetricsDoc::set_batch(const std::vector<std::uint32_t>& sources,
                           double batch_seconds) {
  std::string out = "{";
  append_kv(out, "size", static_cast<std::uint64_t>(sources.size()));
  out += ",\"sources\":[";
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (i) out += ',';
    append_u64(out, sources[i]);
  }
  out += "],";
  out += "\"batch_seconds\":";
  append_double(out, batch_seconds);
  out += ",\"qps\":";
  append_double(out, batch_seconds > 0 && !sources.empty()
                         ? static_cast<double>(sources.size()) / batch_seconds
                         : 0.0);
  out += '}';
  batch_json_ = std::move(out);
}

void MetricsDoc::set_shard(std::uint64_t shards, std::uint64_t window_bytes,
                           std::uint64_t shard_sweeps,
                           std::uint64_t window_faults) {
  std::string out = "{";
  append_kv(out, "shards", shards);
  out += ',';
  append_kv(out, "window_bytes", window_bytes);
  out += ',';
  append_kv(out, "shard_sweeps", shard_sweeps);
  out += ',';
  append_kv(out, "window_faults", window_faults);
  out += '}';
  shard_json_ = std::move(out);
}

void MetricsDoc::set_delta(std::uint64_t inserts, std::uint64_t deletes,
                           std::uint64_t batches, std::uint64_t resettled,
                           std::uint64_t full_settled, bool fallback) {
  std::string out = "{";
  append_kv(out, "inserts", inserts);
  out += ',';
  append_kv(out, "deletes", deletes);
  out += ',';
  append_kv(out, "batches", batches);
  out += ',';
  append_kv(out, "resettled", resettled);
  out += ',';
  append_kv(out, "full_settled", full_settled);
  out += ',';
  append_kv(out, "fallback", static_cast<std::uint64_t>(fallback ? 1 : 0));
  out += '}';
  delta_json_ = std::move(out);
}

std::string MetricsDoc::to_json() const {
  std::string out = "{\"schema\":\"";
  out += kMetricsSchema;
  out += "\",\"version\":";
  append_u64(out, static_cast<std::uint64_t>(kMetricsVersion));
  out += ",\"algo\":\"";
  out += json::escape(algo_);
  out += "\",\"variant\":\"";
  out += json::escape(variant_);
  out += "\",\"graph\":{\"spec\":\"";
  out += json::escape(graph_spec_);
  out += "\",";
  append_kv(out, "n", n_);
  out += ',';
  append_kv(out, "m", m_);
  out += "},";
  append_kv(out, "workers", static_cast<std::uint64_t>(workers_));
  out += ",\"params\":{";
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += json::escape(params_[i].first);
    out += "\":";
    out += params_[i].second;
  }
  out += '}';
  if (!batch_json_.empty()) {
    out += ",\"batch\":";
    out += batch_json_;
  }
  if (!shard_json_.empty()) {
    out += ",\"shard\":";
    out += shard_json_;
  }
  if (!delta_json_.empty()) {
    out += ",\"delta\":";
    out += delta_json_;
  }
  out += ",\"trials\":[";
  for (std::size_t i = 0; i < trials_.size(); ++i) {
    if (i) out += ',';
    out += "{\"seconds\":";
    append_double(out, trials_[i].seconds);
    out += ",\"telemetry\":";
    out += pasgal::to_json(trials_[i].telemetry);
    out += '}';
  }
  out += "]}\n";
  return out;
}

Status write_metrics_json(const std::string& path, const MetricsDoc& doc) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    return Status::Failure(ErrorCategory::kIo,
                           "cannot open metrics output for writing", path);
  }
  std::string text = doc.to_json();
  std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  int close_err = std::fclose(f);
  if (written != text.size() || close_err != 0) {
    return Status::Failure(ErrorCategory::kIo, "short write", path);
  }
  return Status::Ok();
}

// --- schema validation -------------------------------------------------------

namespace {

Status schema_fail(const std::string& what) {
  return Status::Failure(ErrorCategory::kValidation,
                         "metrics schema: " + what);
}

const json::Value* require(const json::Value& obj, const char* key,
                           json::Value::Kind kind, Status& status,
                           const std::string& context) {
  if (!status.ok()) return nullptr;
  const json::Value* v = obj.find(key);
  if (!v) {
    status = schema_fail(context + ": missing key '" + key + "'");
    return nullptr;
  }
  if (v->kind != kind) {
    status = schema_fail(context + ": key '" + key + "' has wrong type");
    return nullptr;
  }
  return v;
}

// Algorithm families a metrics document may describe. Unknown algo strings
// are schema errors: downstream bench tooling keys tables off this set, and
// a typo'd family silently dropping out of a report is worse than a failure.
constexpr const char* kKnownAlgos[] = {
    "bfs",    "sssp", "scc",       "bcc", "cc",
    "kcore",  "pagerank", "tc",    "graph_gen", "graph_convert"};

bool known_algo(const std::string& algo) {
  for (const char* a : kKnownAlgos) {
    if (algo == a) return true;
  }
  return false;
}

Status validate_trial(const json::Value& trial, std::size_t index,
                      const std::string& algo) {
  std::string ctx = "trials[" + std::to_string(index) + "]";
  Status st;
  const json::Value* seconds =
      require(trial, "seconds", json::Value::Kind::kNumber, st, ctx);
  if (seconds && seconds->number < 0) return schema_fail(ctx + ": negative seconds");
  const json::Value* telemetry =
      require(trial, "telemetry", json::Value::Kind::kObject, st, ctx);
  if (!st.ok()) return st;

  const json::Value* totals =
      require(*telemetry, "totals", json::Value::Kind::kObject, st, ctx);
  const json::Value* rounds =
      require(*telemetry, "rounds", json::Value::Kind::kArray, st, ctx);
  const json::Value* rounds_omitted = require(
      *telemetry, "rounds_omitted", json::Value::Kind::kNumber, st, ctx);
  require(*telemetry, "vgc_depth_hist", json::Value::Kind::kArray, st, ctx);
  const json::Value* hashbag =
      require(*telemetry, "hashbag", json::Value::Kind::kObject, st, ctx);
  const json::Value* scheduler =
      require(*telemetry, "scheduler", json::Value::Kind::kObject, st, ctx);
  require(*telemetry, "phases", json::Value::Kind::kArray, st, ctx);
  if (!st.ok()) return st;

  for (const char* key : {"rounds", "edges_scanned", "vertices_visited",
                          "max_frontier"}) {
    require(*totals, key, json::Value::Kind::kNumber, st, ctx + ".totals");
  }
  for (const char* key : {"inserts", "block_advances", "extracts",
                          "peak_extract"}) {
    require(*hashbag, key, json::Value::Kind::kNumber, st, ctx + ".hashbag");
  }
  const json::Value* workers = require(*scheduler, "workers",
                                       json::Value::Kind::kNumber, st,
                                       ctx + ".scheduler");
  for (const char* key : {"steals", "tasks", "busy_ns", "idle_ns"}) {
    require(*scheduler, key, json::Value::Kind::kNumber, st, ctx + ".scheduler");
  }
  const json::Value* per_worker =
      require(*scheduler, "per_worker", json::Value::Kind::kArray, st,
              ctx + ".scheduler");
  if (!st.ok()) return st;

  if (per_worker->array.size() != static_cast<std::size_t>(workers->number)) {
    return schema_fail(ctx + ": per_worker length != workers");
  }

  // Round-count consistency: totals.rounds must equal the trace length plus
  // whatever the serialization cap dropped (kMaxSerializedRounds).
  if (rounds_omitted->number < 0) {
    return schema_fail(ctx + ": negative rounds_omitted");
  }
  if (static_cast<std::size_t>(totals->find("rounds")->number) !=
      rounds->array.size() +
          static_cast<std::size_t>(rounds_omitted->number)) {
    return schema_fail(ctx +
                       ": totals.rounds != len(rounds) + rounds_omitted");
  }

  // Per-round required keys + monotone cumulative counters.
  double prev_cum_edges = -1, prev_cum_visits = -1;
  for (std::size_t i = 0; i < rounds->array.size(); ++i) {
    const json::Value& r = rounds->array[i];
    std::string rctx = ctx + ".rounds[" + std::to_string(i) + "]";
    if (!r.is_object()) return schema_fail(rctx + ": not an object");
    for (const char* key : {"index", "frontier", "edges", "visits",
                            "cum_edges", "cum_visits", "wall_ns"}) {
      require(r, key, json::Value::Kind::kNumber, st, rctx);
    }
    require(r, "kind", json::Value::Kind::kString, st, rctx);
    if (!st.ok()) return st;
    if (static_cast<std::size_t>(r.find("index")->number) != i) {
      return schema_fail(rctx + ": index mismatch");
    }
    double ce = r.find("cum_edges")->number;
    double cv = r.find("cum_visits")->number;
    if (ce < prev_cum_edges || cv < prev_cum_visits) {
      return schema_fail(rctx + ": cumulative counters not monotone");
    }
    prev_cum_edges = ce;
    prev_cum_visits = cv;
    const std::string& kind = r.find("kind")->str;
    if (kind != "sparse" && kind != "dense" && kind != "local") {
      return schema_fail(rctx + ": unknown round kind '" + kind + "'");
    }
    // Per-round convergence residuals are a PageRank-only shape: every
    // pagerank round carries one, no other family may emit one.
    const json::Value* delta = r.find("delta");
    if (algo == "pagerank") {
      if (delta == nullptr || !delta->is_number() || delta->number < 0) {
        return schema_fail(rctx +
                           ": pagerank rounds require a non-negative delta");
      }
    } else if (delta != nullptr) {
      return schema_fail(rctx + ": round delta is only valid for pagerank");
    }
  }
  // Cumulative counters never exceed the run totals.
  if (prev_cum_edges > totals->find("edges_scanned")->number ||
      prev_cum_visits > totals->find("vertices_visited")->number) {
    return schema_fail(ctx + ": cumulative counters exceed totals");
  }
  return Status::Ok();
}

}  // namespace

Status validate_metrics(const json::Value& doc) {
  if (!doc.is_object()) return schema_fail("document is not an object");
  Status st;
  const json::Value* schema =
      require(doc, "schema", json::Value::Kind::kString, st, "document");
  const json::Value* version =
      require(doc, "version", json::Value::Kind::kNumber, st, "document");
  const json::Value* algo =
      require(doc, "algo", json::Value::Kind::kString, st, "document");
  require(doc, "variant", json::Value::Kind::kString, st, "document");
  const json::Value* graph =
      require(doc, "graph", json::Value::Kind::kObject, st, "document");
  const json::Value* workers =
      require(doc, "workers", json::Value::Kind::kNumber, st, "document");
  const json::Value* params =
      require(doc, "params", json::Value::Kind::kObject, st, "document");
  const json::Value* trials =
      require(doc, "trials", json::Value::Kind::kArray, st, "document");
  if (!st.ok()) return st;

  if (schema->str != kMetricsSchema) {
    return schema_fail("unknown schema '" + schema->str + "'");
  }
  if (static_cast<int>(version->number) != kMetricsVersion) {
    return schema_fail("unsupported version " +
                       std::to_string(version->number));
  }
  if (!known_algo(algo->str)) {
    return schema_fail("unknown algo '" + algo->str + "'");
  }
  require(*graph, "spec", json::Value::Kind::kString, st, "graph");
  require(*graph, "n", json::Value::Kind::kNumber, st, "graph");
  require(*graph, "m", json::Value::Kind::kNumber, st, "graph");
  if (!st.ok()) return st;
  if (workers->number < 1) return schema_fail("workers < 1");

  // Load / registry / serving-mode counters are optional params, but when
  // present they must be well-formed non-negative numbers (drivers emit
  // them via record_load and ServeHarness::record in apps/common.h).
  for (const char* key :
       {"registry_hits", "registry_misses", "registry_bytes_mapped",
        "warm_load_bytes_mapped", "serve_opens", "peak_rss_cold_bytes",
        "load_bytes_mapped", "load_wall_ns", "peak_rss_bytes",
        "encoded_bytes", "compression_ratio", "decode_wall_ns"}) {
    if (const json::Value* v = params->find(key)) {
      if (!v->is_number() || v->number < 0) {
        return schema_fail("params." + std::string(key) +
                           " must be a non-negative number");
      }
    }
  }
  // Compression accounting travels as a trio: a compressed .pgr load emits
  // all three (encoded section size, raw/encoded ratio, decode wall time —
  // 0 on registry warm opens), an uncompressed load emits none.
  {
    const json::Value* enc = params->find("encoded_bytes");
    const json::Value* ratio = params->find("compression_ratio");
    const json::Value* dec = params->find("decode_wall_ns");
    if ((enc == nullptr) != (ratio == nullptr) ||
        (enc == nullptr) != (dec == nullptr)) {
      return schema_fail(
          "params.encoded_bytes / compression_ratio / decode_wall_ns travel "
          "together");
    }
  }
  const json::Value* reg_hits = params->find("registry_hits");
  const json::Value* reg_misses = params->find("registry_misses");
  if ((reg_hits == nullptr) != (reg_misses == nullptr)) {
    return schema_fail(
        "params.registry_hits and params.registry_misses travel together");
  }
  if (const json::Value* serve_opens = params->find("serve_opens")) {
    if (serve_opens->number < 1) return schema_fail("params.serve_opens < 1");
    // Every .pgr open counts exactly one hit or miss; non-.pgr opens count
    // neither — so hit + miss never exceeds the open count.
    if (reg_hits != nullptr &&
        reg_hits->number + reg_misses->number > serve_opens->number) {
      return schema_fail(
          "params: registry_hits + registry_misses > serve_opens");
    }
  }

  // Batched multi-source documents carry a top-level "batch" object; when
  // present it must be self-consistent (drivers emit it via set_batch).
  if (const json::Value* batch = doc.find("batch")) {
    if (!batch->is_object()) return schema_fail("batch is not an object");
    const json::Value* size =
        require(*batch, "size", json::Value::Kind::kNumber, st, "batch");
    const json::Value* sources =
        require(*batch, "sources", json::Value::Kind::kArray, st, "batch");
    const json::Value* batch_seconds = require(
        *batch, "batch_seconds", json::Value::Kind::kNumber, st, "batch");
    const json::Value* qps =
        require(*batch, "qps", json::Value::Kind::kNumber, st, "batch");
    if (!st.ok()) return st;
    if (size->number < 1 ||
        size->number > static_cast<double>(kMaxBatchSources)) {
      return schema_fail("batch.size out of range [1, " +
                         std::to_string(kMaxBatchSources) + "]");
    }
    if (sources->array.size() != static_cast<std::size_t>(size->number)) {
      return schema_fail("batch.sources length != batch.size");
    }
    std::unordered_set<std::uint64_t> dedup;
    for (const json::Value& s : sources->array) {
      if (!s.is_number() || s.number < 0) {
        return schema_fail("batch.sources entries must be non-negative "
                           "numbers");
      }
      if (!dedup.insert(static_cast<std::uint64_t>(s.number)).second) {
        return schema_fail("batch.sources contains duplicates");
      }
    }
    if (batch_seconds->number < 0) {
      return schema_fail("batch.batch_seconds negative");
    }
    if (qps->number < 0) return schema_fail("batch.qps negative");
  }

  // Sharded runs carry a top-level "shard" object (set_shard): the plan
  // (count + window budget) and the window activation counters.
  if (const json::Value* shard = doc.find("shard")) {
    if (!shard->is_object()) return schema_fail("shard is not an object");
    const json::Value* shards =
        require(*shard, "shards", json::Value::Kind::kNumber, st, "shard");
    const json::Value* window = require(*shard, "window_bytes",
                                        json::Value::Kind::kNumber, st,
                                        "shard");
    const json::Value* sweeps = require(*shard, "shard_sweeps",
                                        json::Value::Kind::kNumber, st,
                                        "shard");
    const json::Value* faults = require(*shard, "window_faults",
                                        json::Value::Kind::kNumber, st,
                                        "shard");
    if (!st.ok()) return st;
    if (shards->number < 1) return schema_fail("shard.shards < 1");
    if (window->number < 1) return schema_fail("shard.window_bytes < 1");
    if (sweeps->number < 0 || faults->number < 0) {
      return schema_fail("shard counters must be non-negative");
    }
    // A fault is a re-activation of a previously-visited shard; every fault
    // is also a sweep, so faults can never outnumber sweeps.
    if (faults->number > sweeps->number) {
      return schema_fail("shard.window_faults > shard.shard_sweeps");
    }
  }

  // Runs over an update overlay carry a top-level "delta" object
  // (set_delta): overlay size plus the incremental repair scope.
  if (const json::Value* delta = doc.find("delta")) {
    if (!delta->is_object()) return schema_fail("delta is not an object");
    const json::Value* inserts =
        require(*delta, "inserts", json::Value::Kind::kNumber, st, "delta");
    const json::Value* deletes =
        require(*delta, "deletes", json::Value::Kind::kNumber, st, "delta");
    const json::Value* batches =
        require(*delta, "batches", json::Value::Kind::kNumber, st, "delta");
    const json::Value* resettled =
        require(*delta, "resettled", json::Value::Kind::kNumber, st, "delta");
    const json::Value* full_settled = require(
        *delta, "full_settled", json::Value::Kind::kNumber, st, "delta");
    const json::Value* fallback =
        require(*delta, "fallback", json::Value::Kind::kNumber, st, "delta");
    if (!st.ok()) return st;
    if (inserts->number < 0 || deletes->number < 0 ||
        resettled->number < 0 || full_settled->number < 0) {
      return schema_fail("delta counters must be non-negative");
    }
    // An overlay exists only after at least one applied batch.
    if (batches->number < 1) return schema_fail("delta.batches < 1");
    if (fallback->number != 0 && fallback->number != 1) {
      return schema_fail("delta.fallback must be 0 or 1");
    }
    // The whole point of the incremental path: it never settles more than a
    // from-scratch recompute (equality = the churn fallback ran).
    if (resettled->number > full_settled->number) {
      return schema_fail("delta.resettled > delta.full_settled");
    }
  }

  // Family-specific result params: a tc document states its triangle count,
  // a pagerank document the iteration count it actually ran.
  if (algo->str == "tc") {
    const json::Value* triangles = params->find("triangles");
    if (triangles == nullptr || !triangles->is_number() ||
        triangles->number < 0) {
      return schema_fail(
          "params.triangles (non-negative) is required for algo 'tc'");
    }
  }
  if (algo->str == "pagerank") {
    const json::Value* iterations = params->find("iterations");
    if (iterations == nullptr || !iterations->is_number() ||
        iterations->number < 1) {
      return schema_fail(
          "params.iterations (>= 1) is required for algo 'pagerank'");
    }
  }

  for (std::size_t i = 0; i < trials->array.size(); ++i) {
    if (Status s = validate_trial(trials->array[i], i, algo->str); !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

}  // namespace pasgal
