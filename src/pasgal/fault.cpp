#include "pasgal/fault.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "pasgal/cli.h"
#include "pasgal/error.h"

namespace pasgal::fault {

namespace {

// Armed state behind a fast-path flag: `armed` is false in the common case,
// so should_fail() costs one relaxed load per call site. The slow path
// (matching the site string, counting hits) takes a mutex — failpoints are
// on error-recovery-grade paths, not per-edge hot loops.
std::atomic<bool> armed{false};
std::mutex mu;
std::string site_name;        // guarded by mu
long long fire_on_hit = 1;    // guarded by mu
long long hits = 0;           // guarded by mu
std::once_flag env_once;

void arm_locked(const std::string& spec) {
  std::size_t colon = spec.find(':');
  std::string site = spec.substr(0, colon);
  long long nth = 1;
  if (colon != std::string::npos) {
    nth = cli::parse_int(spec.substr(colon + 1), "PASGAL_FAULT nth", 1,
                         1LL << 40, ErrorCategory::kUsage);
  }
  if (site.empty()) {
    throw Error(ErrorCategory::kUsage,
                "PASGAL_FAULT spec '" + spec + "': empty site name");
  }
  site_name = site;
  fire_on_hit = nth;
  hits = 0;
  armed.store(true, std::memory_order_release);
}

void load_env_once() {
  std::call_once(env_once, [] {
    const char* env = std::getenv("PASGAL_FAULT");
    if (env == nullptr || env[0] == '\0') return;
    std::lock_guard<std::mutex> lock(mu);
    arm_locked(env);  // a malformed env spec throws kUsage at first use
  });
}

}  // namespace

bool should_fail(const char* site) {
  load_env_once();
  if (!armed.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(mu);
  if (!armed.load(std::memory_order_relaxed) || site_name != site) {
    return false;
  }
  if (++hits < fire_on_hit) return false;
  armed.store(false, std::memory_order_release);  // fire once, then disarm
  return true;
}

void arm(const std::string& spec) {
  load_env_once();  // claim the once-flag so a later env read can't rearm
  std::lock_guard<std::mutex> lock(mu);
  arm_locked(spec);
}

void disarm() {
  load_env_once();
  std::lock_guard<std::mutex> lock(mu);
  site_name.clear();
  armed.store(false, std::memory_order_release);
}

std::string armed_spec() {
  load_env_once();
  std::lock_guard<std::mutex> lock(mu);
  if (!armed.load(std::memory_order_relaxed)) return "";
  return site_name + ":" + std::to_string(fire_on_hit);
}

}  // namespace pasgal::fault
