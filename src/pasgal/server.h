// pasgal_serve: a long-lived graph-query daemon on a unix socket.
//
// The serving arc (ROADMAP "serving mode") so far made single runs cheap to
// repeat inside one process (GraphRegistry, --serve N). This is the missing
// piece: a process that stays up, owns the worker pool, and answers queries
// over a line-based protocol — which forces every robustness question the
// one-shot drivers could ignore. The answers, in one place:
//
//   * Admission control — an `open` is checked against a byte budget
//     (ServerOptions::admission_budget_bytes, defaulting to a fraction of
//     the pasgal/resource.h ceiling) BEFORE any mapping or decode happens.
//     Over budget → LRU eviction of unpinned graphs; still over → a typed
//     [resource] response. The daemon never learns about memory pressure
//     from the OOM killer.
//   * Deadlines — `deadline_ms=N` on a query arms a CancelToken checked at
//     round boundaries (pasgal/cancel.h). Expiry unwinds that one query
//     with a typed [timeout] response; the worker pool and every other
//     connection are untouched.
//   * Graceful degradation — malformed requests, corrupt files, over-budget
//     opens and expired deadlines produce one-line typed errors on the
//     connection that asked; a client that dies mid-response just loses its
//     connection. request_stop() (SIGTERM in the app) stops accepting,
//     lets in-flight requests finish, and run() returns cleanly.
//   * Fault injection — the pasgal/fault.h failpoints (mmap, decode, alloc,
//     sock_write) make each of those paths executable on demand.
//   * Sharded execution — with --shard-mb (ServerOptions::shard_window_bytes
//     or shard_auto) queries open their graph through a bounded mmap window
//     instead of a registry-resident mapping; admission prices the windowed
//     footprint and the metrics JSON gains a "shard" section.
//
// Protocol: newline-terminated requests, exactly one newline-terminated
// response per request.
//
//   open graph=<path.pgr> [pin]        -> ok opened ...        (admission)
//   bfs graph=<p> source=<v> [algo=pasgal|gbbs] [deadline_ms=<n>]
//                                      -> pasgal.metrics v1 JSON (one line)
//   sssp graph=<p> source=<v> [algo=rho|delta|em] [deadline_ms=<n>]
//                                      -> pasgal.metrics v1 JSON (one line);
//                                         algo=em is the edge_map Bellman-Ford
//                                         that stays correct on sharded opens
//   bfs graph=<p> sources=<v0,v1,...> [deadline_ms=<n>]
//                                      -> batched: one ms_bfs sweep advances
//                                         every source; the JSON document
//                                         carries a "batch" section. Max 64
//                                         sources, duplicates rejected with
//                                         a typed [usage] error (never
//                                         silently truncated). algo= accepts
//                                         only "ms" here.
//   sssp graph=<p> sources=<v0,v1,...> [algo=rho|delta] [deadline_ms=<n>]
//                                      -> batched landmark run, same rules
//                                         (the deadline covers the whole
//                                         batch). sources= conflicts with
//                                         source=; @file lists are CLI-only.
//   cc graph=<p> [algo=uf|lp|ldd] [deadline_ms=<n>]
//   kcore graph=<p> [algo=pasgal|seq] [deadline_ms=<n>]
//   pagerank graph=<p> [algo=pasgal|seq] [deadline_ms=<n>]
//   tc graph=<p> [algo=pasgal|seq] [deadline_ms=<n>]
//                                      -> pasgal.metrics v1 JSON (one line).
//                                         cc/kcore/tc symmetrize in-core and
//                                         answer sharded opens with a typed
//                                         [usage] error; pagerank algo=pasgal
//                                         runs shard-at-a-time through the
//                                         transpose's window.
//   update graph=<p> [add=<u:v,...>] [del=<u:v,...>] [deadline_ms=<n>]
//                                      -> ok updated ... applies one edge
//                                         batch to the resident graph's
//                                         delta overlay (graphs/delta.h).
//                                         Admission prices the overlay
//                                         growth; the graph is pinned so
//                                         LRU pressure cannot silently drop
//                                         pending updates. Sharded opens
//                                         and weighted graphs answer with a
//                                         typed [usage] error.
//   compact graph=<p> [deadline_ms=<n>]
//                                      -> ok compacted ... folds the overlay
//                                         into a rewritten .pgr (write to a
//                                         temp file, rename over the
//                                         original) and drops the stale
//                                         registry entry; the registry's
//                                         mtime/size keying makes the next
//                                         open map the new bytes.
//   stats                              -> ok entries=... resident_bytes=...
//   evict graph=<p>                    -> ok evicted ... (reports
//                                         dropped_updates=N when the entry
//                                         carried an uncompacted overlay)
//   shutdown                           -> ok draining   (then run() returns)
//   anything else                      -> error [usage] ...
//
// Error responses use the app drivers' stderr shape — "error [category]
// message" — so the same scripts can match both.
//
// Threading: one accept loop (the thread calling run()) plus one thread per
// connection. Anything that drives the work-stealing pool — queries, and
// opens that decode/validate in parallel — is serialized by an internal
// mutex: the scheduler maps every non-pool thread to worker slot 0, so
// exactly one external thread may drive parallel work at a time (the accept
// thread never does). Queries and opens therefore queue; stats and
// evictions proceed concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graphs/graph_io.h"

namespace pasgal {

struct ServerOptions {
  // Filesystem path of the unix SOCK_STREAM socket. bind() unlinks a
  // pre-existing entry (stale sockets survive a crash; the path is the
  // caller's to own).
  std::string socket_path;

  // Admission budget for resident graph bytes. 0 means derive it:
  // admission_fraction * memory_limit_bytes(). Tests set it directly —
  // the resource.h ceiling is resolved once per process and cannot vary
  // between test cases.
  std::uint64_t admission_budget_bytes = 0;
  double admission_fraction = 0.5;

  // Deadline applied to queries that don't pass deadline_ms=. 0 = none.
  std::uint64_t default_deadline_ms = 0;

  // Shard-at-a-time query execution (--shard-mb). A non-zero window makes
  // every query open its graph sharded through a bounded mmap window of this
  // many bytes — such opens bypass the registry (each query owns its window)
  // and admission prices the windowed footprint, not the file. shard_auto
  // instead shards only graphs whose in-core footprint cannot fit the
  // admission budget even after LRU eviction, using a budget/4 window.
  std::uint64_t shard_window_bytes = 0;
  bool shard_auto = false;

  // Poll tick for the accept and connection loops: the latency bound on
  // noticing request_stop() while idle.
  int poll_tick_ms = 100;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Creates, binds and listens on the socket (typed kIo Error on failure).
  // Separate from run() so callers can report readiness before blocking.
  void bind();

  // Serves until request_stop(): accepts connections, spawns one handler
  // thread each, and on stop drains — no new accepts, in-flight requests
  // finish, connection threads join — then removes the socket and returns.
  // Call bind() first.
  void run();

  // Stop trigger, callable from any thread and from a signal handler (one
  // write(2) to a self-pipe; async-signal-safe). Idempotent.
  void request_stop();

  // The effective admission budget in bytes (resolved from the options).
  std::uint64_t admission_budget() const;

  // Lifetime request counters (responses sent, error responses among them,
  // connections dropped mid-write). For tests and the stats response.
  std::uint64_t requests_ok() const;
  std::uint64_t requests_error() const;
  std::uint64_t connections_dropped() const;

 private:
  // One newline-terminated response line for one request line. Never throws:
  // every failure is rendered as an "error [category] ..." line.
  std::string handle_request(const std::string& line);

  std::string do_open(const std::string& path, bool pin);
  std::string do_query(const std::string& cmd, const std::string& path,
                       std::uint64_t source, const std::string& algo,
                       std::uint64_t deadline_ms);
  // Batched form of do_query (sources= on bfs/sssp): runs ms_bfs or
  // batch_sssp over the validated source list and returns one metrics
  // document with a "batch" section.
  std::string do_batch(const std::string& cmd, const std::string& path,
                       const std::vector<std::uint32_t>& sources,
                       const std::string& algo, std::uint64_t deadline_ms);
  // Sourceless whole-graph queries (cc/kcore/pagerank/tc): same admission,
  // deadline and metrics contract as do_query, minus the source vertex.
  std::string do_family_query(const std::string& cmd, const std::string& path,
                              const std::string& algo,
                              std::uint64_t deadline_ms);
  // Applies one insert/delete batch to `path`'s resident mapping as a delta
  // overlay, pricing the overlay growth against the admission budget and
  // pinning the entry (pending updates must not be LRU-evicted).
  std::string do_update(const std::string& path, const std::string& add_spec,
                        const std::string& del_spec, std::uint64_t deadline_ms);
  // Folds `path`'s overlay into a rewritten .pgr (temp file + rename) and
  // evicts the stale entry so the registry's rewrite detection maps the new
  // bytes on the next open.
  std::string do_compact(const std::string& path, std::uint64_t deadline_ms);
  std::string do_stats();
  std::string do_evict(const std::string& path);

  // Admission check for a .pgr not currently resident; throws kResource
  // when the budget cannot be met even after LRU eviction. Returns the
  // shard spec this open must use: empty for in-core, a concrete window
  // when the server shards (fixed shard_window_bytes, or the shard_auto
  // fallback for graphs that cannot fit in-core).
  PgrShardSpec admit(const std::string& path);

  // Ensures `path` is open and retained (auto-open for queries) when the
  // effective spec is in-core; sharded specs are returned for the query to
  // open its own window (nothing registry-resident to retain).
  PgrShardSpec ensure_open(const std::string& path);

  void accept_loop();
  void handle_connection(int fd);
  // False when the client is gone (write failed / injected sock_write
  // fault): the caller closes the connection.
  bool send_line(int fd, const std::string& line);

  ServerOptions opts_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};

  // Serializes algorithm execution (see the threading note above).
  std::mutex exec_mu_;

  std::mutex conn_mu_;
  std::vector<std::thread> connections_;

  std::atomic<std::uint64_t> requests_ok_{0};
  std::atomic<std::uint64_t> requests_error_{0};
  std::atomic<std::uint64_t> connections_dropped_{0};
};

}  // namespace pasgal
