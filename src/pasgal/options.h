// Unified run context for the algorithm entry points.
//
// Every algorithm variant has a modern signature
//
//   RunReport<T> variant(const Graph& g, [const Graph& gt,] const AlgoOptions&)
//
// declared next to its legacy form in the family header and implemented in
// algorithms/run_api.cpp. `AlgoOptions` carries the union of all per-family
// tuning knobs (each family reads only its own), the source vertex, the
// validation flag, and an optional caller-owned Tracer; `RunReport` bundles
// the output with the run's wall time and aggregated telemetry. The legacy
// `(..., Params, RunStats*)` signatures remain as thin compatibility
// wrappers around the same implementations.
//
// Batched multi-source queries use the same shape one level up:
// `BatchOptions` (a source list plus the shared AlgoOptions) in,
// `BatchReport<T>` (per-source RunReport slices plus batch-level wall time
// and telemetry) out. See ms_bfs (bfs.h) and batch_sssp (sssp.h).
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graphs/graph.h"
#include "pasgal/cancel.h"
#include "pasgal/telemetry.h"
#include "pasgal/vgc.h"

namespace pasgal {

struct AlgoOptions {
  // Source vertex for single-source algorithms (BFS, SSSP, PPSP start).
  VertexId source = 0;

  // VGC knobs (BFS, SSSP, SCC, k-core, toposort).
  VgcParams vgc;
  std::uint32_t vgc_engage_factor = 16;

  // Direction optimization (BFS, SCC).
  EdgeId dense_threshold_den = 20;
  bool use_dense = true;

  // GAPBS hysteresis controller (gapbs_bfs only).
  int gapbs_alpha = 15;
  int gapbs_beta = 18;

  // Stepping SSSP: rho-stepping by default, delta-stepping if
  // sssp_delta_mode is set.
  bool sssp_delta_mode = false;
  std::uint64_t sssp_delta = 32;
  std::size_t sssp_rho = 8192;

  // SCC pivot batching (scc_beta/scc_seed also drive the ldd cc variant).
  double scc_beta = 2.0;
  std::uint64_t scc_seed = 42;
  std::size_t multistep_cutoff = 1000;

  // PageRank power iteration: round cap, L1 convergence threshold, damping.
  std::uint32_t pagerank_iterations = 100;
  double pagerank_epsilon = 1e-7;
  double pagerank_damping = 0.85;

  // Cross-check the output against a reference computation (drivers only;
  // the run_api entry points record it in no way — it rides here so one
  // options struct reaches the whole driver pipeline).
  bool validate = false;

  // When non-null the run records into this tracer (reset at run start) and
  // the caller can keep it for later inspection; when null a run-local
  // tracer is used and survives only as RunReport::telemetry.
  Tracer* tracer = nullptr;

  // Cooperative cancellation/deadline token (see pasgal/cancel.h). Checked
  // by the parallel BFS variants and the stepping SSSP framework at every
  // round/step boundary; an expired token unwinds the run with a typed
  // kTimeout Error and leaves the worker pool healthy. Sequential baselines
  // ignore it (they run no rounds to check between).
  const CancelToken* cancel = nullptr;
};

// Output of one algorithm run under the modern API.
template <typename T>
struct RunReport {
  T output;
  double seconds = 0;
  RunTelemetry telemetry;
};

// --- batched multi-source queries -------------------------------------------
//
// A serving workload is dominated by many small queries on one pinned graph;
// the batch surface amortizes them. The bit-parallel kernels advance one
// source per bit of a machine word, so a batch holds at most 64 sources.

inline constexpr std::size_t kMaxBatchSources = 64;  // one source per bit

// One batched query: up to kMaxBatchSources distinct sources advanced
// together. Tuning knobs, the shared CancelToken, and the optional
// caller-owned tracer ride in `algo` (its single-source `source` field is
// ignored — the batch is the source set).
struct BatchOptions {
  std::vector<VertexId> sources;
  AlgoOptions algo;
};

// Output of one batched run: one RunReport slice per source, in the order
// the sources were given, plus batch-level wall time and telemetry. A
// bit-parallel batch advances every source through one shared frontier
// sweep, so a slice's `seconds` is the amortized share (batch wall / batch
// size) — the per-query cost a serving system actually pays — and its
// telemetry is empty; the shared sweep's rounds live in the batch-level
// `telemetry`. Per-source wrappers (batch_sssp) fill real per-slice walls.
template <typename T>
struct BatchReport {
  std::vector<RunReport<T>> per_source;
  double seconds = 0;
  RunTelemetry telemetry;

  std::size_t batch_size() const { return per_source.size(); }
  double qps() const {
    return seconds > 0 ? static_cast<double>(per_source.size()) / seconds : 0;
  }
};

// Validates a batch source list against a graph with `n` vertices:
// non-empty, at most kMaxBatchSources entries, duplicate-free, every vertex
// < n. Throws a typed kUsage Error naming the offending entry — the shared
// contract for the drivers' --sources flag, the server's sources= key, and
// the batch entry points themselves (implemented in algorithms/run_api.cpp).
void check_batch_sources(std::span<const VertexId> sources, std::size_t n);

// Shared harness for the run_api entry points: route recording through the
// caller's tracer (or a run-local one), time the body, aggregate at the end.
template <typename F>
auto run_traced(const AlgoOptions& opt, F&& body)
    -> RunReport<decltype(body(static_cast<Tracer*>(nullptr)))> {
  Tracer local;
  Tracer* tracer = opt.tracer != nullptr ? opt.tracer : &local;
  tracer->reset();
  auto start = std::chrono::steady_clock::now();
  RunReport<decltype(body(static_cast<Tracer*>(nullptr)))> report{
      body(tracer), 0.0, {}};
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  report.telemetry = tracer->aggregate();
  return report;
}

}  // namespace pasgal
