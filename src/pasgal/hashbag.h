// Concurrent hash bag (Wang et al., PPoPP'23) — the frontier container used
// throughout PASGAL.
//
// A hash bag is an unordered multiset supporting lock-free parallel `insert`
// and a parallel `extract_all`. Unlike a dense boolean array + pack (the
// GBBS-style frontier), it needs no O(n) work per round: the bag's footprint
// is proportional to the number of elements inserted, which is what makes
// sparse rounds on large-diameter graphs cheap.
//
// Implementation: a chain of blocks of geometrically increasing capacity.
// An insert hashes to a pseudo-random slot in the current block and linear-
// probes a short window for an empty slot (CAS). Blocks are kept at most
// ~half full via a per-block counter sampled on every insert; when a block
// saturates, inserters race to bump the current-block index (later blocks
// are allocated on demand). Extraction packs the non-empty slots of all
// used blocks and resets them.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "parlay/hash_rng.h"
#include "parlay/parallel.h"
#include "parlay/primitives.h"
#include "pasgal/error.h"
#include "pasgal/telemetry.h"

namespace pasgal {

template <typename T>
class HashBag {
 public:
  static constexpr T kEmpty = static_cast<T>(-1);

  // `first_block_log2`: capacity of block 0; doubles per block.
  explicit HashBag(int first_block_log2 = 12, int max_blocks = 24)
      : first_block_log2_(first_block_log2), blocks_(max_blocks) {
    ensure_block(0);
  }

  // Route occupancy events (inserts, block advances, extract sizes) into a
  // run's tracer. The tracer must outlive the bag or be detached (nullptr);
  // events are per-worker counters on the tracer, so concurrent inserts stay
  // wait-free.
  void attach_tracer(Tracer* tracer) { tracer_ = tracer; }

  // Thread-safe. `x` must not equal the empty sentinel. Duplicate values are
  // fine: the probe start mixes in a per-thread nonce, so equal elements
  // spread across the block instead of fighting for one window.
  //
  // When every block up to `max_blocks` is full, insert throws a kResource
  // pasgal::Error instead of spinning on the last block forever: on the
  // final block the short probe window widens to a full sweep, and a sweep
  // that finds no empty slot proves saturation.
  void insert(T x) {
    static thread_local std::uint64_t nonce = 0;
    std::uint64_t salt =
        hash64(static_cast<std::uint64_t>(x) ^
               hash64(++nonce + (static_cast<std::uint64_t>(worker_id()) << 48)));
    for (std::uint64_t attempt = 0;; ++attempt) {
      std::size_t b = current_block_.load(std::memory_order_acquire);
      Block* blk = ensure_block(b);
      std::size_t cap = block_capacity(b);
      std::size_t start = (salt ^ hash64(b + (attempt << 8))) & (cap - 1);
      // Probe a short window; long probes mean the block is crowded. On the
      // last block, probe every slot — there is nowhere left to spill.
      bool last_block = (b + 1 == blocks_.size());
      std::size_t window = last_block ? cap : kProbeWindow;
      for (std::size_t i = 0; i < window; ++i) {
        std::size_t slot = (start + i) & (cap - 1);
        T expected = kEmpty;
        if (blk->slots[slot].load(std::memory_order_relaxed) == kEmpty &&
            blk->slots[slot].compare_exchange_strong(expected, x,
                                                     std::memory_order_relaxed)) {
          // Track fullness; advance the shared block index near half full.
          std::size_t size =
              blk->count.fetch_add(1, std::memory_order_relaxed) + 1;
          if (tracer_) tracer_->add_bag_insert();
          if (size >= cap / 2) {
            advance_current_block(b);
          }
          return;
        }
      }
      if (last_block) {
        throw Error(ErrorCategory::kResource,
                    "HashBag saturated: all " +
                        std::to_string(blocks_.size()) +
                        " blocks full (total capacity " +
                        std::to_string(total_capacity()) +
                        "); construct with a larger first_block_log2 or "
                        "max_blocks");
      }
      advance_current_block(b);
    }
  }

  // Parallel: collect every element, leaving the bag empty. Multiset
  // semantics — duplicates inserted are duplicates returned.
  std::vector<T> extract_all() {
    std::size_t used = current_block_.load(std::memory_order_acquire) + 1;
    std::vector<std::vector<T>> per_block(used);
    for (std::size_t b = 0; b < used; ++b) {
      Block* blk = blocks_[b].get();
      if (blk == nullptr || blk->count.load(std::memory_order_relaxed) == 0) {
        continue;
      }
      std::size_t cap = block_capacity(b);
      per_block[b] = pack_indexed<T>(
          cap,
          [&](std::size_t i) {
            return blk->slots[i].load(std::memory_order_relaxed) != kEmpty;
          },
          [&](std::size_t i) {
            return blk->slots[i].load(std::memory_order_relaxed);
          });
    }
    clear();
    std::vector<T> out = flatten(per_block);
    if (tracer_) tracer_->note_bag_extract(out.size());
    return out;
  }

  // Number of elements currently stored (exact when no inserts in flight).
  std::size_t size() const {
    std::size_t total = 0;
    std::size_t used = current_block_.load(std::memory_order_acquire) + 1;
    for (std::size_t b = 0; b < used; ++b) {
      if (blocks_[b]) total += blocks_[b]->count.load(std::memory_order_relaxed);
    }
    return total;
  }

  bool empty() const { return size() == 0; }

  // Parallel: reset all used blocks to empty.
  void clear() {
    std::size_t used = current_block_.load(std::memory_order_acquire) + 1;
    for (std::size_t b = 0; b < used; ++b) {
      Block* blk = blocks_[b].get();
      if (blk == nullptr || blk->count.load(std::memory_order_relaxed) == 0) {
        continue;
      }
      std::size_t cap = block_capacity(b);
      parallel_for(0, cap, [&](std::size_t i) {
        blk->slots[i].store(kEmpty, std::memory_order_relaxed);
      });
      blk->count.store(0, std::memory_order_relaxed);
    }
    current_block_.store(0, std::memory_order_release);
  }

 private:
  static constexpr std::size_t kProbeWindow = 16;

  struct Block {
    explicit Block(std::size_t cap) : slots(cap) {
      for (auto& s : slots) s.store(kEmpty, std::memory_order_relaxed);
    }
    std::vector<std::atomic<T>> slots;
    std::atomic<std::size_t> count{0};
  };

  std::size_t block_capacity(std::size_t b) const {
    return std::size_t{1} << (static_cast<std::size_t>(first_block_log2_) + b);
  }

  std::size_t total_capacity() const {
    std::size_t total = 0;
    for (std::size_t b = 0; b < blocks_.size(); ++b) total += block_capacity(b);
    return total;
  }

  Block* ensure_block(std::size_t b) {
    Block* blk = blocks_[b].load(std::memory_order_acquire);
    if (blk != nullptr) return blk;
    auto fresh = std::make_unique<Block>(block_capacity(b));
    Block* expected = nullptr;
    if (blocks_[b].compare_exchange_strong(expected, fresh.get(),
                                           std::memory_order_acq_rel)) {
      return fresh.release();  // installed; owned by blocks_ (freed in dtor)
    }
    return expected;  // another thread won
  }

  void advance_current_block(std::size_t b) {
    if (b + 1 >= blocks_.size()) return;  // saturated; keep probing last block
    std::size_t expected = b;
    if (current_block_.compare_exchange_strong(expected, b + 1,
                                               std::memory_order_acq_rel)) {
      if (tracer_) tracer_->add_bag_advance();
    }
  }

  // Wrapper giving unique_ptr semantics over an atomically-installed pointer.
  class AtomicBlockPtr {
   public:
    AtomicBlockPtr() = default;
    ~AtomicBlockPtr() { delete ptr_.load(std::memory_order_relaxed); }
    AtomicBlockPtr(const AtomicBlockPtr&) = delete;
    AtomicBlockPtr& operator=(const AtomicBlockPtr&) = delete;
    Block* load(std::memory_order mo) const { return ptr_.load(mo); }
    bool compare_exchange_strong(Block*& expected, Block* desired,
                                 std::memory_order mo) {
      return ptr_.compare_exchange_strong(expected, desired, mo);
    }
    Block* get() const { return ptr_.load(std::memory_order_acquire); }
    explicit operator bool() const { return get() != nullptr; }
    Block* operator->() const { return get(); }

   private:
    std::atomic<Block*> ptr_{nullptr};
  };

  int first_block_log2_;
  std::atomic<std::size_t> current_block_{0};
  std::vector<AtomicBlockPtr> blocks_;
  Tracer* tracer_ = nullptr;
};

}  // namespace pasgal
