// Run telemetry subsystem: per-round tracing, scheduler counters, and
// versioned JSON metrics (DESIGN.md "Telemetry").
//
// The paper's whole argument is about *round structure* — VGC trades global
// synchronizations for local-search work, hash bags change frontier
// collection cost — so every run records a structured trace of rounds
// (frontier size, edges scanned, sparse/dense/local direction, wall time),
// VGC local-search depth histograms, hash-bag occupancy/spill events, and
// scheduler-level steal/busy/idle counters.
//
// Hot-path discipline: all recording goes through per-worker, cache-line
// padded slots (wait-free, no shared atomics); aggregation into a
// `RunTelemetry` happens once at run end. Round boundaries and phase marks
// are recorded only by the round master (the thread driving the outer loop).
//
// `Tracer` subsumes the old `RunStats` (which survives as an alias in
// stats.h so existing code compiles unchanged).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "parlay/scheduler.h"
#include "pasgal/error.h"

namespace pasgal {

// How a round processed its frontier:
//   sparse — per-vertex push over a sparse frontier (tau = 1)
//   dense  — direction-optimized pull over all eligible vertices
//   local  — VGC local searches (tau > 1) rooted at the frontier
enum class RoundKind : std::uint8_t { kSparse, kDense, kLocal };

inline const char* round_kind_name(RoundKind k) {
  switch (k) {
    case RoundKind::kSparse: return "sparse";
    case RoundKind::kDense: return "dense";
    case RoundKind::kLocal: return "local";
  }
  return "unknown";
}

// One global synchronization. `edges`/`visits` are the deltas between this
// round boundary and the previous one; `cum_*` are cumulative at the
// boundary, so consumers can check monotonicity without re-summing.
struct RoundTrace {
  std::uint64_t index = 0;
  std::uint64_t frontier = 0;
  RoundKind kind = RoundKind::kSparse;
  std::uint64_t edges = 0;
  std::uint64_t visits = 0;
  std::uint64_t cum_edges = 0;
  std::uint64_t cum_visits = 0;
  std::uint64_t wall_ns = 0;
  // Per-round convergence residual (PageRank's L1 delta). Negative = absent;
  // only emitted to JSON when set, and required for every pagerank round.
  double delta = -1.0;
};

// Hash-bag frontier behaviour over a run (summed over all bags a run
// attaches the tracer to).
struct HashBagTelemetry {
  std::uint64_t inserts = 0;
  std::uint64_t block_advances = 0;  // spill/resize events (block saturation)
  std::uint64_t extracts = 0;
  std::uint64_t peak_extract = 0;  // largest single extract_all result
};

struct SchedulerTelemetry {
  std::vector<WorkerCounters> per_worker;  // deltas over the run
  WorkerCounters total() const {
    WorkerCounters t;
    for (const WorkerCounters& w : per_worker) {
      t.steals += w.steals;
      t.tasks += w.tasks;
      t.busy_ns += w.busy_ns;
      t.idle_ns += w.idle_ns;
    }
    return t;
  }
};

struct PhaseTiming {
  std::string name;
  std::uint64_t ns = 0;
};

// log2 buckets of VGC local-search expansion counts: bucket i counts
// searches that expanded [2^(i-1), 2^i) vertices (bucket 0: exactly 0).
inline constexpr int kDepthHistBuckets = 24;

// Serialization cap on the per-round trace: adversarial inputs (a 500k-vertex
// chain under a level-synchronous algorithm) produce one round per vertex,
// which would make metrics files gigabytes. to_json() emits the first
// kMaxSerializedRounds rounds plus a "rounds_omitted" count; aggregate
// totals always cover the whole run.
inline constexpr std::size_t kMaxSerializedRounds = 1024;

// Everything a run recorded, aggregated. Plain data — serializable via
// to_json() below.
struct RunTelemetry {
  std::uint64_t edges_scanned = 0;
  std::uint64_t vertices_visited = 0;
  std::uint64_t max_frontier = 0;
  std::vector<RoundTrace> rounds;
  std::array<std::uint64_t, kDepthHistBuckets> vgc_depth_hist{};
  HashBagTelemetry hashbag;
  SchedulerTelemetry scheduler;
  std::vector<PhaseTiming> phases;
};

// The per-run recorder. Construct (or reset) immediately before a run: the
// constructor snapshots the scheduler's counters so aggregate() can report
// the run's own steal/busy/idle deltas.
class Tracer {
 public:
  Tracer();
  void reset();

  // --- hot-path counters (callable from any worker; wait-free) -------------
  void add_edges(std::uint64_t k) { slot().edges += k; }
  void add_visits(std::uint64_t k) { slot().visits += k; }
  void add_local_depth(std::uint64_t expanded) {
    ++slot().depth_hist[depth_bucket(expanded)];
  }
  void add_bag_insert() { ++slot().bag_inserts; }
  void add_bag_advance() { ++slot().bag_advances; }
  void note_bag_extract(std::uint64_t size) {
    Slot& s = slot();
    ++s.bag_extracts;
    if (size > s.bag_peak) s.bag_peak = size;
  }

  // --- round boundaries (round master only) --------------------------------
  // A direction chooser (edge_map) may set the upcoming round's kind before
  // the round master ends it; an explicit kind overrides the pending one.
  void set_round_kind(RoundKind k) { pending_kind_ = k; }
  // Iterative kernels (PageRank) attach the round's convergence residual
  // before ending it; end_round consumes and clears the pending value.
  void set_round_delta(double d) { pending_delta_ = d; }
  void end_round(std::uint64_t frontier_size);
  void end_round(std::uint64_t frontier_size, RoundKind kind);

  // --- phase wall-clock breakdown (round master only; non-reentrant) -------
  void phase_begin(const char* name);
  void phase_end();

  // --- legacy RunStats interface -------------------------------------------
  std::uint64_t edges_scanned() const;
  std::uint64_t vertices_visited() const;
  std::uint64_t rounds() const {
    return static_cast<std::uint64_t>(frontier_sizes_.size());
  }
  const std::vector<std::uint64_t>& frontier_sizes() const {
    return frontier_sizes_;
  }
  std::uint64_t max_frontier() const;

  // --- aggregation (run end; not concurrency-safe with recording) ----------
  RunTelemetry aggregate() const;

 private:
  struct alignas(64) Slot {
    std::uint64_t edges = 0;
    std::uint64_t visits = 0;
    std::uint64_t bag_inserts = 0;
    std::uint64_t bag_advances = 0;
    std::uint64_t bag_extracts = 0;
    std::uint64_t bag_peak = 0;
    std::uint64_t depth_hist[kDepthHistBuckets] = {};
  };

  static int depth_bucket(std::uint64_t expanded);

  Slot& slot() {
    std::size_t i = static_cast<std::size_t>(worker_id());
    return slots_[i < slots_.size() ? i : 0];
  }
  void sum_hot(std::uint64_t& edges, std::uint64_t& visits) const;

  std::vector<Slot> slots_;
  std::vector<std::uint64_t> frontier_sizes_;  // legacy view of round_trace_
  std::vector<RoundTrace> round_trace_;
  RoundKind pending_kind_ = RoundKind::kSparse;
  double pending_delta_ = -1.0;
  std::uint64_t prev_edges_ = 0;
  std::uint64_t prev_visits_ = 0;
  std::chrono::steady_clock::time_point run_start_;
  std::chrono::steady_clock::time_point last_round_;
  std::vector<WorkerCounters> sched_epoch_;
  std::vector<PhaseTiming> phases_;
  const char* open_phase_ = nullptr;
  std::chrono::steady_clock::time_point phase_start_;
};

// RAII phase mark; a null tracer makes it a no-op, so call sites stay
// unconditional.
class ScopedPhase {
 public:
  ScopedPhase(Tracer* tracer, const char* name) : tracer_(tracer) {
    if (tracer_) tracer_->phase_begin(name);
  }
  ~ScopedPhase() {
    if (tracer_) tracer_->phase_end();
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Tracer* tracer_;
};

// --- minimal JSON (writer + parser) -----------------------------------------
//
// The metrics files are consumed by bench/ and by external tooling; the
// schema test parses them back, so both directions live here with no third-
// party dependency. The parser handles exactly the JSON the writer emits
// (objects, arrays, strings with \-escapes, doubles, bools, null).

namespace json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  // Object member lookup; nullptr if absent or not an object.
  const Value* find(const std::string& key) const;
};

// Parses a complete JSON document (trailing garbage is an error).
Status parse(const std::string& text, Value& out);

std::string escape(const std::string& s);

}  // namespace json

// --- versioned metrics document ---------------------------------------------

inline constexpr int kMetricsVersion = 1;
inline constexpr const char* kMetricsSchema = "pasgal.metrics";

// One driver invocation: graph + algorithm variant + parameters + one trial
// per repeat. Serialized by --json-metrics and consumed by bench tooling.
class MetricsDoc {
 public:
  MetricsDoc(std::string algo, std::string variant, std::string graph_spec,
             std::uint64_t n, std::uint64_t m);

  // Params are recorded as JSON values: numbers stay numbers.
  void set_param(const std::string& name, std::uint64_t value);
  void set_param(const std::string& name, double value);
  void set_param(const std::string& name, const std::string& value);

  void add_trial(double seconds, const RunTelemetry& telemetry);

  // Batched multi-source run: records the source list and the shared sweep's
  // wall time, emitted as a top-level "batch" object
  //   {"size":k,"sources":[...],"batch_seconds":s,"qps":k/s}
  // between params and trials. One document describes one batch; trials stay
  // the per-repeat batch walls. Plain uint32 (not VertexId) so this header
  // stays below graph.h in the include order.
  void set_batch(const std::vector<std::uint32_t>& sources,
                 double batch_seconds);

  // Shard-at-a-time execution: the open's shard plan (count + window budget)
  // and the window's activation counters summed over the run, emitted as a
  // top-level "shard" object
  //   {"shards":k,"window_bytes":w,"shard_sweeps":s,"window_faults":f}
  // between batch (if any) and trials. Absent for in-core runs.
  void set_shard(std::uint64_t shards, std::uint64_t window_bytes,
                 std::uint64_t shard_sweeps, std::uint64_t window_faults);

  // Update-overlay execution: the delta overlay attached to the graph at run
  // time and, for incremental repairs, the repair scope, emitted as a
  // top-level "delta" object
  //   {"inserts":i,"deletes":d,"batches":b,
  //    "resettled":r,"full_settled":n,"fallback":0|1}
  // between shard (if any) and trials. `resettled` is how many vertices the
  // incremental pass actually re-settled, `full_settled` what a from-scratch
  // recompute settles (n); a static overlay run reports 0/0/0 for the repair
  // triple. Absent when the graph has no overlay.
  void set_delta(std::uint64_t inserts, std::uint64_t deletes,
                 std::uint64_t batches, std::uint64_t resettled,
                 std::uint64_t full_settled, bool fallback);

  std::size_t num_trials() const { return trials_.size(); }
  std::string to_json() const;

 private:
  std::string algo_, variant_, graph_spec_;
  std::uint64_t n_, m_;
  int workers_;
  std::vector<std::pair<std::string, std::string>> params_;  // name -> encoded
  std::string batch_json_;  // encoded "batch" object; empty = single-source
  std::string shard_json_;  // encoded "shard" object; empty = in-core
  std::string delta_json_;  // encoded "delta" object; empty = no overlay
  struct Trial {
    double seconds;
    RunTelemetry telemetry;
  };
  std::vector<Trial> trials_;
};

// Serialization of one run's telemetry (a JSON object).
std::string to_json(const RunTelemetry& t);

// Writes doc.to_json() to `path`; kIo Status on failure.
Status write_metrics_json(const std::string& path, const MetricsDoc& doc);

// Schema check for a parsed metrics document: required keys, version field,
// per-trial round-count == totals.rounds, monotone cumulative counters,
// scheduler per_worker length == workers. Used by the schema test and the
// `metrics_check` tool.
Status validate_metrics(const json::Value& doc);

}  // namespace pasgal
