// Memory ceiling for allocations whose size is dictated by untrusted input
// (file headers, generator specs). A corrupt .bin header claiming n = 2^60
// must be rejected *before* the reader tries to materialize a 2^63-byte
// offsets array and takes the process down.
//
// The ceiling is resolved once per process:
//   1. PASGAL_MEM_LIMIT_MB environment variable, if set to a positive
//      integer (values whose byte conversion would overflow 64 bits are a
//      kUsage error, not a silently-wrapped tiny ceiling);
//   2. else MemAvailable (fallback MemTotal) from /proc/meminfo;
//   3. else a conservative 4 GiB default (non-Linux / unreadable procfs).
#pragma once

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>

#include "pasgal/error.h"

namespace pasgal {

namespace internal {

// Largest PASGAL_MEM_LIMIT_MB whose byte conversion fits in 64 bits. Values
// beyond it used to wrap silently in `mb * 1024 * 1024`, turning a huge
// requested ceiling into a tiny one that rejected every allocation.
inline constexpr unsigned long long kMaxMemLimitMb = ~std::uint64_t{0} >> 20;

inline std::uint64_t mem_limit_mb_to_bytes(unsigned long long mb) {
  if (mb > kMaxMemLimitMb) {
    throw Error(ErrorCategory::kUsage,
                "PASGAL_MEM_LIMIT_MB=" + std::to_string(mb) +
                    " overflows the 64-bit byte ceiling (max " +
                    std::to_string(kMaxMemLimitMb) + ")");
  }
  return static_cast<std::uint64_t>(mb) << 20;
}

inline std::uint64_t detect_memory_limit_bytes() {
  if (const char* env = std::getenv("PASGAL_MEM_LIMIT_MB")) {
    char* end = nullptr;
    errno = 0;
    unsigned long long mb = std::strtoull(env, &end, 10);
    // strtoull accepts a leading '-' by wrapping to a huge value; a
    // negative limit is malformed (ignored), not astronomically large.
    if (env[0] >= '0' && env[0] <= '9' && end != env && *end == '\0' &&
        mb > 0) {
      // Out-of-range strings saturate to ULLONG_MAX (ERANGE), which exceeds
      // kMaxMemLimitMb and is rejected like any other overflowing value.
      return mem_limit_mb_to_bytes(mb);
    }
  }
  std::ifstream meminfo("/proc/meminfo");
  std::uint64_t available_kb = 0, total_kb = 0;
  std::string key;
  std::uint64_t value = 0;
  std::string unit;
  while (meminfo >> key >> value) {
    std::getline(meminfo, unit);  // consume " kB"
    if (key == "MemAvailable:") available_kb = value;
    if (key == "MemTotal:") total_kb = value;
  }
  std::uint64_t kb = available_kb != 0 ? available_kb : total_kb;
  if (kb != 0) return kb * 1024;
  return std::uint64_t{4} * 1024 * 1024 * 1024;
}

// CLI override of the ceiling (--mem-limit-mb). 0 = no override; consulted
// before the once-per-process detection so a driver flag can lower or raise
// the ceiling without mutating the environment.
inline std::atomic<std::uint64_t>& mem_limit_override_bytes() {
  static std::atomic<std::uint64_t> value{0};
  return value;
}

}  // namespace internal

// Installs the --mem-limit-mb override. The flag and the environment
// variable are two owners of the same knob; both set at once is a conflict
// the user should resolve, not a silent precedence rule.
inline void set_memory_limit_mb(unsigned long long mb) {
  if (std::getenv("PASGAL_MEM_LIMIT_MB") != nullptr) {
    throw Error(ErrorCategory::kUsage,
                "--mem-limit-mb conflicts with PASGAL_MEM_LIMIT_MB in the "
                "environment: set one, not both");
  }
  internal::mem_limit_override_bytes().store(
      internal::mem_limit_mb_to_bytes(mb), std::memory_order_relaxed);
}

inline std::uint64_t memory_limit_bytes() {
  std::uint64_t forced =
      internal::mem_limit_override_bytes().load(std::memory_order_relaxed);
  if (forced != 0) return forced;
  static const std::uint64_t limit = internal::detect_memory_limit_bytes();
  return limit;
}

// Peak resident set size of this process so far, in bytes (0 if the kernel
// does not report it). Recorded in run telemetry: the mmap load path should
// show a peak well below the heap path for the same graph, because pages of
// the mapping are counted only once touched.
inline std::uint64_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::uint64_t kb = std::strtoull(line.c_str() + 6, nullptr, 10);
    return kb * 1024;
  }
  return 0;
}

// Status check that `bytes` (the total an input claims to need) fits under
// the ceiling. `what` names the allocation for the diagnostic; `file` is the
// input file driving it, if any.
inline Status check_allocation(std::uint64_t bytes, const std::string& what,
                               const std::string& file = {}) {
  std::uint64_t limit = memory_limit_bytes();
  if (bytes <= limit) return Status::Ok();
  return Status::Failure(
      ErrorCategory::kResource,
      what + " needs " + std::to_string(bytes) + " bytes but the memory " +
          "ceiling is " + std::to_string(limit) +
          " bytes (override with PASGAL_MEM_LIMIT_MB)",
      file);
}

}  // namespace pasgal
