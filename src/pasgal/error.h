// Structured error handling for every input-facing entry point.
//
// Two complementary vocabulary types:
//  * `Error`  — an exception carrying a typed category plus the file/offset
//               context of the failing input. Thrown by the I/O layer, the
//               generators, and algorithm precondition checks.
//  * `Status` — a value-type result for validation passes that want to report
//               failure without unwinding (e.g. `Graph::validate()`,
//               cycle detection in toposort). Convertible to an `Error` via
//               `throw_if_error()`.
//
// Categories map to the uniform app exit codes (see exit_code() below):
//   0 ok / 2 usage / 3 bad input (io, format, validation) / 4 resource /
//   5 timeout.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

namespace pasgal {

enum class ErrorCategory {
  kIo,          // file missing / unreadable / short read / write failure
  kFormat,      // file opened but its bytes don't parse as the claimed format
  kValidation,  // parsed fine but violates a structural invariant (CSR
                // monotonicity, target bounds, cycle in a DAG input, ...)
  kResource,    // input would exceed a memory/capacity ceiling
  kUsage,       // bad command-line flags or malformed generator spec syntax
  kTimeout,     // a cooperative deadline expired mid-run (the run unwound
                // cleanly at a round boundary; the process is healthy)
};

inline const char* to_string(ErrorCategory c) {
  switch (c) {
    case ErrorCategory::kIo: return "io";
    case ErrorCategory::kFormat: return "format";
    case ErrorCategory::kValidation: return "validation";
    case ErrorCategory::kResource: return "resource";
    case ErrorCategory::kUsage: return "usage";
    case ErrorCategory::kTimeout: return "timeout";
  }
  return "unknown";
}

// Uniform app-driver exit codes (documented in README "Error handling").
inline int exit_code(ErrorCategory c) {
  switch (c) {
    case ErrorCategory::kUsage: return 2;
    case ErrorCategory::kIo:
    case ErrorCategory::kFormat:
    case ErrorCategory::kValidation: return 3;
    case ErrorCategory::kResource: return 4;
    case ErrorCategory::kTimeout: return 5;
  }
  return 1;
}

inline constexpr std::uint64_t kNoOffset = static_cast<std::uint64_t>(-1);

namespace internal {
inline std::string format_error(ErrorCategory category,
                                const std::string& message,
                                const std::string& file, std::uint64_t offset) {
  std::string out = "[";
  out += to_string(category);
  out += "] ";
  if (!file.empty()) {
    out += file;
    if (offset != kNoOffset) {
      out += " (byte ";
      out += std::to_string(offset);
      out += ")";
    }
    out += ": ";
  }
  out += message;
  return out;
}
}  // namespace internal

class Error : public std::runtime_error {
 public:
  Error(ErrorCategory category, std::string message, std::string file = {},
        std::uint64_t offset = kNoOffset)
      : std::runtime_error(
            internal::format_error(category, message, file, offset)),
        category_(category),
        file_(std::move(file)),
        offset_(offset) {}

  ErrorCategory category() const { return category_; }
  const std::string& file() const { return file_; }
  std::uint64_t offset() const { return offset_; }

 private:
  ErrorCategory category_;
  std::string file_;
  std::uint64_t offset_;
};

class Status {
 public:
  Status() = default;  // ok

  static Status Ok() { return {}; }
  static Status Failure(ErrorCategory category, std::string message,
                        std::string file = {},
                        std::uint64_t offset = kNoOffset) {
    Status s;
    s.error_ = std::make_shared<const Payload>(Payload{
        category, std::move(message), std::move(file), offset});
    return s;
  }

  bool ok() const { return error_ == nullptr; }
  explicit operator bool() const { return ok(); }

  // The accessors below require !ok().
  ErrorCategory category() const { return error_->category; }
  const std::string& message() const { return error_->message; }
  const std::string& file() const { return error_->file; }
  std::uint64_t offset() const { return error_->offset; }

  std::string to_string() const {
    if (ok()) return "ok";
    return internal::format_error(error_->category, error_->message,
                                  error_->file, error_->offset);
  }

  void throw_if_error() const {
    if (!ok()) {
      throw Error(error_->category, error_->message, error_->file,
                  error_->offset);
    }
  }

 private:
  struct Payload {
    ErrorCategory category;
    std::string message;
    std::string file;
    std::uint64_t offset;
  };
  std::shared_ptr<const Payload> error_;  // null == ok
};

}  // namespace pasgal
